(** Generator v2: random, spatially-safe MiniC programs over the {e
    full} language surface, for differential fuzzing.

    Where the retired [Progen] exercised only [long] scalars and
    modulo-indexed arrays, this generator reaches every construct the
    paper's Table 1 discussion singles out as hard for instrumentations:

    - all integer C types ([char]/[int]/[long]) as locals, globals and
      array elements;
    - structs with nested field access, pointers to structs ([->]) and
      struct copies via [memcpy] (the §5.1.2 idiom);
    - pointers and pointer arithmetic, kept in bounds by construction;
    - the byte intrinsics [memcpy]/[memset]/[memmove] over generated
      buffers (including overlapping [memmove]);
    - int↔ptr round-trips (§4.4) — the integer never reaches program
      output, so results stay address-independent;
    - size-less [extern T a[];] declarations whose definition lives in a
      sibling translation unit (§4.3);
    - multi-function call graphs, including pointer-taking helpers.

    Every program records which grammar {e productions} it used, so a
    coverage test can prove the generator never silently regresses to a
    sliver of the surface, and the arrays it creates as {e sites} — the
    places a known out-of-bounds access can be injected to derive an
    unsafe mutant ({!mutate}).

    Safety by construction: all indices are reduced modulo the extent
    ([((e % n + n) % n)]), all intrinsic lengths are bounded by the
    smallest involved object, and no pointer or address-derived integer
    ever flows into program output.  A generated program must therefore
    behave identically at every optimization level, under either
    instrumentation, at every extension point, and under either VM
    dispatch mode. *)

module Rng = Mi_support.Rng
module Bench = Mi_bench_kit.Bench

type elem = Char | Int | Long

let elem_name = function Char -> "char" | Int -> "int" | Long -> "long"
let elem_size = function Char -> 1 | Int -> 4 | Long -> 8
let elems = [| Char; Int; Long |]

type region = Stack | Heap | Global | Extern

let region_name = function
  | Stack -> "stack"
  | Heap -> "heap"
  | Global -> "global"
  | Extern -> "extern"

(** An injectable array site: an object [main] can reach by name, with
    its true geometry.  [si_wide_sb] marks size-less extern
    declarations, where SoftBound only has a wide upper bound (§4.3) and
    an overflow past the definition is {e by design} not reported — the
    justification of the mutant whitelist. *)
type site = {
  si_array : string;
  si_extent : int;  (** elements *)
  si_elem : elem;
  si_region : region;
  si_wide_sb : bool;
}

type prog = {
  p_seed : int;
  p_sources : Bench.source list;
  p_sites : site list;
  p_frees : site list;
      (** heap sites the program frees in its epilogue — after every
          digest print, so the safe program never touches a dead object.
          Temporal mutants ({!mutate_temporal}) splice after these
          frees; spatial mutants ({!mutate}) splice before them. *)
  p_productions : string list;  (** sorted, deduplicated *)
  p_features : int list;
      (** enabled feature indices ([0..n_features-1]), sorted — the
          campaign driver scores these against the VM coverage each seed
          discovers and boosts the winners ({!generate}'s [boost]) *)
}

(** The full production catalog.  The grammar-coverage test asserts that
    a fixed seed block exercises {e exactly} this set: a missing tag
    means the generator regressed; an unknown tag means the catalog is
    stale. *)
let all_productions =
  [
    "call.helper";
    "call.ptr_helper";
    "cast.int_ptr";
    "cond";
    "extern.size_less";
    "global.array";
    "global.scalar";
    "heap.array";
    "heap.free";
    "if";
    "incdec";
    "intrinsic.memcpy";
    "intrinsic.memmove";
    "intrinsic.memset";
    "local.array";
    "loop.do";
    "loop.for";
    "loop.while";
    "opassign";
    "ptr.arith";
    "ptr.deref";
    "ptr.index";
    "struct.access";
    "struct.arrow";
    "struct.def";
    "struct.memcpy";
    "struct.nested";
    "type.char";
    "type.int";
    "type.long";
  ]

(* ------------------------------------------------------------------ *)
(* Generation context                                                  *)
(* ------------------------------------------------------------------ *)

type ctx = {
  rng : Rng.t;
  buf : Buffer.t;
  mutable n_names : int;
  prods : (string, unit) Hashtbl.t;
  scalars : (string * elem) list ref;  (** assignable, printable *)
  readonly : string list ref;  (** loop counters: read-only *)
  arrays : site list ref;  (** arrays in scope *)
  ptrs : (string * elem * int) list ref;
      (** pointer name, element, in-bounds extent from its base *)
  spaths : (string * elem) list ref;  (** struct field paths in scope *)
  funcs : string list ref;  (** helpers taking one long *)
  pfuncs : string list ref;  (** helpers taking a long pointer *)
}

let prod ctx p = Hashtbl.replace ctx.prods p ()

let elem_prod ctx e =
  prod ctx
    (match e with Char -> "type.char" | Int -> "type.int" | Long -> "type.long")

let pf ctx fmt = Printf.ksprintf (Buffer.add_string ctx.buf) fmt

let fresh ctx stem =
  ctx.n_names <- ctx.n_names + 1;
  Printf.sprintf "%s%d" stem ctx.n_names

let pick ctx l = List.nth l (Rng.int ctx.rng (List.length l))

let readable_scalars ctx =
  List.map fst !(ctx.scalars) @ !(ctx.readonly)

(* ------------------------------------------------------------------ *)
(* Expressions                                                         *)
(* ------------------------------------------------------------------ *)

(* always-in-bounds index into an extent-[n] object *)
let rec gen_index ctx extent : string =
  let e = gen_expr ctx 1 in
  Printf.sprintf "((%s %% %d + %d) %% %d)" e extent extent extent

(* an arithmetic expression over everything readable in scope; the
   result is a number, never an address *)
and gen_expr ctx depth : string =
  let leaf () =
    match Rng.int ctx.rng 8 with
    | 0 -> string_of_int (Rng.int_range ctx.rng (-20) 20)
    | 1 | 2 when readable_scalars ctx <> [] ->
        pick ctx (readable_scalars ctx)
    | 3 | 4 when !(ctx.arrays) <> [] ->
        let s = pick ctx !(ctx.arrays) in
        Printf.sprintf "%s[%s]" s.si_array (gen_index ctx s.si_extent)
    | 5 when !(ctx.spaths) <> [] ->
        let path, _ = pick ctx !(ctx.spaths) in
        prod ctx "struct.access";
        path
    | 6 when !(ctx.ptrs) <> [] ->
        let p, _, rem = pick ctx !(ctx.ptrs) in
        prod ctx "ptr.index";
        Printf.sprintf "%s[%s]" p (gen_index ctx rem)
    | _ -> string_of_int (Rng.int_range ctx.rng 1 9)
  in
  if depth <= 0 then leaf ()
  else
    match Rng.int ctx.rng 12 with
    | 0 | 1 ->
        Printf.sprintf "(%s + %s)" (gen_expr ctx (depth - 1))
          (gen_expr ctx (depth - 1))
    | 2 ->
        Printf.sprintf "(%s - %s)" (gen_expr ctx (depth - 1))
          (gen_expr ctx (depth - 1))
    | 3 ->
        Printf.sprintf "(%s * %s)"
          (gen_expr ctx (depth - 1))
          (string_of_int (Rng.int_range ctx.rng 1 5))
    | 4 ->
        Printf.sprintf "(%s / %d)" (gen_expr ctx (depth - 1))
          (Rng.int_range ctx.rng 1 7)
    | 5 ->
        Printf.sprintf "(%s %% %d)" (gen_expr ctx (depth - 1))
          (Rng.int_range ctx.rng 2 17)
    | 6 ->
        (* bit ops: mask keeps magnitudes tame *)
        let op = pick ctx [ "&"; "|"; "^" ] in
        Printf.sprintf "(%s %s %d)" (gen_expr ctx (depth - 1)) op
          (Rng.int_range ctx.rng 1 63)
    | 7 ->
        if Rng.bool ctx.rng then
          Printf.sprintf "(%s >> %d)" (gen_expr ctx (depth - 1))
            (Rng.int_range ctx.rng 1 4)
        else
          Printf.sprintf "((%s & 1023) << %d)"
            (gen_expr ctx (depth - 1))
            (Rng.int_range ctx.rng 1 4)
    | 8 when !(ctx.funcs) <> [] ->
        prod ctx "call.helper";
        Printf.sprintf "%s(%s)" (pick ctx !(ctx.funcs))
          (gen_expr ctx (depth - 1))
    | 9 ->
        prod ctx "cond";
        (* the lowerer requires ternary arm types to agree modulo decay
           (it cannot insert conversions after the arm blocks close), so
           pin both arms to [long] with explicit casts *)
        Printf.sprintf "(%s > %s ? (long)(%s) : (long)(%s))"
          (gen_expr ctx (depth - 1))
          (gen_expr ctx 0)
          (gen_expr ctx (depth - 1))
          (gen_expr ctx (depth - 1))
    | _ -> leaf ()

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)
(* ------------------------------------------------------------------ *)

let scalar_decl ctx ~indent =
  let pad = String.make indent ' ' in
  let e = Rng.choose ctx.rng elems in
  elem_prod ctx e;
  let v = fresh ctx "v" in
  pf ctx "%s%s %s = %s;\n" pad (elem_name e) v (gen_expr ctx 2);
  ctx.scalars := (v, e) :: !(ctx.scalars)

let rec gen_stmt ctx ~indent ~depth =
  let pad = String.make indent ' ' in
  match Rng.int ctx.rng 14 with
  | 0 -> scalar_decl ctx ~indent
  | 1 when !(ctx.scalars) <> [] ->
      pf ctx "%s%s = %s;\n" pad
        (fst (pick ctx !(ctx.scalars)))
        (gen_expr ctx depth)
  | 2 when !(ctx.arrays) <> [] ->
      let s = pick ctx !(ctx.arrays) in
      pf ctx "%s%s[%s] = %s;\n" pad s.si_array
        (gen_index ctx s.si_extent)
        (gen_expr ctx depth)
  | 3 when !(ctx.ptrs) <> [] ->
      let p, _, rem = pick ctx !(ctx.ptrs) in
      prod ctx "ptr.index";
      pf ctx "%s%s[%s] = %s;\n" pad p (gen_index ctx rem)
        (gen_expr ctx depth)
  | 4 when !(ctx.ptrs) <> [] ->
      let p, _, rem = pick ctx !(ctx.ptrs) in
      prod ctx "ptr.deref";
      let off = Rng.int ctx.rng rem in
      if Rng.bool ctx.rng then
        pf ctx "%s*(%s + %d) = %s;\n" pad p off (gen_expr ctx depth)
      else pf ctx "%sacc += *(%s + %d);\n" pad p off
  | 5 when !(ctx.spaths) <> [] ->
      let path, e = pick ctx !(ctx.spaths) in
      prod ctx "struct.access";
      elem_prod ctx e;
      pf ctx "%s%s = %s;\n" pad path (gen_expr ctx depth)
  | 6 when !(ctx.scalars) <> [] ->
      prod ctx "if";
      let s = fst (pick ctx !(ctx.scalars)) in
      let cond =
        if Rng.bool ctx.rng then
          Printf.sprintf "%s > %s" s (gen_expr ctx 1)
        else begin
          (* short-circuiting condition *)
          let op = if Rng.bool ctx.rng then "&&" else "||" in
          Printf.sprintf "%s > %s %s %s < %s" s (gen_expr ctx 0) op s
            (gen_expr ctx 0)
        end
      in
      pf ctx "%sif (%s) { %s = %s - 1; } else { %s = %s + 2; }\n" pad cond s
        s s s
  | 7 when !(ctx.scalars) <> [] ->
      prod ctx "opassign";
      let s = fst (pick ctx !(ctx.scalars)) in
      let op = pick ctx [ "+="; "-="; "^=" ] in
      pf ctx "%s%s %s %s;\n" pad s op (gen_expr ctx 1)
  | 8 when !(ctx.scalars) <> [] ->
      prod ctx "incdec";
      let s = fst (pick ctx !(ctx.scalars)) in
      pf ctx "%s%s%s;\n" pad s (if Rng.bool ctx.rng then "++" else "--")
  | 9 when !(ctx.pfuncs) <> [] ->
      (* pointer-taking helper over any long array in scope *)
      let longs =
        List.filter
          (fun s -> s.si_elem = Long && s.si_extent >= 4)
          !(ctx.arrays)
      in
      if longs = [] then pf ctx "%sacc += 1;\n" pad
      else begin
        prod ctx "call.ptr_helper";
        let s = pick ctx longs in
        pf ctx "%sacc += %s(%s);\n" pad (pick ctx !(ctx.pfuncs)) s.si_array
      end
  | 10 when !(ctx.funcs) <> [] ->
      prod ctx "call.helper";
      pf ctx "%sacc += %s(%s);\n" pad (pick ctx !(ctx.funcs))
        (gen_expr ctx 1)
  | _ when !(ctx.scalars) <> [] ->
      pf ctx "%sacc += %s;\n" pad (fst (pick ctx !(ctx.scalars)))
  | _ -> pf ctx "%sacc += 1;\n" pad

and gen_loop ctx ~indent ~depth =
  let pad = String.make indent ' ' in
  let i = fresh ctx "i" in
  let n = Rng.int_range ctx.rng 2 10 in
  let body () =
    ctx.readonly := i :: !(ctx.readonly);
    let saved_scalars = !(ctx.scalars) in
    for _ = 1 to Rng.int_range ctx.rng 1 3 do
      gen_stmt ctx ~indent:(indent + 2) ~depth
    done;
    ctx.scalars := saved_scalars;
    ctx.readonly := List.tl !(ctx.readonly)
  in
  match Rng.int ctx.rng 4 with
  | 0 ->
      prod ctx "loop.while";
      pf ctx "%slong %s = 0;\n" pad i;
      pf ctx "%swhile (%s < %d) {\n" pad i n;
      body ();
      pf ctx "%s  %s = %s + 1;\n" pad i i;
      pf ctx "%s}\n" pad
  | 1 ->
      prod ctx "loop.do";
      pf ctx "%slong %s = 0;\n" pad i;
      pf ctx "%sdo {\n" pad;
      body ();
      pf ctx "%s  %s = %s + 1;\n" pad i i;
      pf ctx "%s} while (%s < %d);\n" pad i (Rng.int_range ctx.rng 1 4)
  | _ ->
      prod ctx "loop.for";
      pf ctx "%slong %s;\n" pad i;
      pf ctx "%sfor (%s = 0; %s < %d; %s++) {\n" pad i i n i;
      body ();
      pf ctx "%s}\n" pad

(* ------------------------------------------------------------------ *)
(* Helpers (the call graph)                                            *)
(* ------------------------------------------------------------------ *)

let gen_helper ctx =
  let name = fresh ctx "helper" in
  pf ctx "long %s(long x) {\n" name;
  let saved_scalars = !(ctx.scalars) in
  let saved_ptrs = !(ctx.ptrs) in
  let saved_spaths = !(ctx.spaths) in
  ctx.scalars := [ ("x", Long) ];
  ctx.ptrs := [];
  ctx.spaths := [];
  pf ctx "  long acc = x %% 100;\n";
  ctx.scalars := ("acc", Long) :: !(ctx.scalars);
  for _ = 1 to Rng.int_range ctx.rng 1 3 do
    gen_stmt ctx ~indent:2 ~depth:1
  done;
  pf ctx "  return acc;\n}\n\n";
  ctx.scalars := saved_scalars;
  ctx.ptrs := saved_ptrs;
  ctx.spaths := saved_spaths;
  ctx.funcs := name :: !(ctx.funcs)

(* a helper taking a pointer parameter; callers pass arrays of extent
   >= 4, so the fixed accesses are in bounds *)
let gen_ptr_helper ctx =
  let name = fresh ctx "psum" in
  pf ctx "long %s(long *p) {\n" name;
  pf ctx "  long acc = p[0] + p[1] * 3;\n";
  pf ctx "  p[%d] = acc %% 50;\n" (Rng.int_range ctx.rng 2 3);
  pf ctx "  return acc + p[%d];\n}\n\n" (Rng.int_range ctx.rng 0 3);
  ctx.pfuncs := name :: !(ctx.pfuncs)

(* ------------------------------------------------------------------ *)
(* Whole programs                                                      *)
(* ------------------------------------------------------------------ *)

(* deterministic element initializer for index [i] of array [k] *)
let init_expr k i = Printf.sprintf "%s * %d + %d" i (3 + (k mod 5)) (k mod 7)

let emit_init_loop ctx ~indent (s : site) =
  let pad = String.make indent ' ' in
  let i = fresh ctx "ii" in
  pf ctx "%slong %s;\n" pad i;
  pf ctx "%sfor (%s = 0; %s < %d; %s++) %s[%s] = %s;\n" pad i i s.si_extent i
    s.si_array i
    (init_expr ctx.n_names i)

(* number of rotating must-hit features; any block of >= this many
   consecutive seeds hits every one *)
let n_features = 11

(* A boosted feature is forced on, but the random draw is still consumed
   when the rotation alone would not decide, so the rng stream — and
   with it everything generated after the flag — is identical with and
   without the boost.  Boosting changes the flag, never the dice.

   Every enablement source records the feature index independently
   (rotation, random draw, boost, and derived rebindings like
   free→heap), so a boosted feature whose draw also hit — or a feature
   both drawn and forced by a rebinding — is recorded more than once;
   {!generate} deduplicates the vector before publishing it as
   [p_features], keeping the campaign's feature scoring one-vote-per-
   feature-per-seed. *)
let feature ctx ~record ~boost seed k p =
  if seed mod n_features = k then begin
    record k;
    true
  end
  else begin
    let hit = Rng.float ctx.rng < p in
    if hit then record k;
    if List.mem k boost then begin
      record k;
      true
    end
    else hit
  end

(* the two mutation splice points of every generated main unit: spatial
   mutants land at the anchor comment — after the digest prints but
   while every object is still live — and temporal mutants land after
   the free epilogue, just before the closing return *)
let spatial_anchor = "  /* mutation anchor: all objects live */\n"
let main_suffix = "  return 0;\n}\n"

(** Generate the program for [seed].  Deterministic: the same seed and
    [boost] always yield the same sources, sites and productions.
    [boost] lists feature indices to force on — the campaign driver
    passes the features whose seeds recently discovered new VM coverage
    ({!prog.p_features} records what a seed ended up using). *)
let generate ?(boost = []) ~seed () : prog =
  let ctx =
    {
      rng = Rng.create ((seed * 2) + 1);
      buf = Buffer.create 2048;
      n_names = 0;
      prods = Hashtbl.create 64;
      scalars = ref [];
      readonly = ref [];
      arrays = ref [];
      ptrs = ref [];
      spaths = ref [];
      funcs = ref [];
      pfuncs = ref [];
    }
  in
  let feats = ref [] in
  let record k = feats := k :: !feats in
  let feat = feature ctx ~record ~boost seed in
  let use_ext = feat 0 0.5 in
  let use_struct = feat 1 0.6 in
  let use_nested = use_struct && feat 2 0.5 in
  let use_heap = feat 3 0.6 in
  let use_intptr = feat 4 0.5 in
  let use_memcpy = feat 5 0.5 in
  let use_memset = feat 6 0.5 in
  let use_memmove = feat 7 0.5 in
  let use_ptr_helper = feat 8 0.5 in
  let use_struct_cpy = use_struct && feat 9 0.5 in
  let use_free = feat 10 0.5 in
  (* a free needs a heap object to free: the free feature forces the
     heap feature along (flag only — both dice were already thrown) *)
  if use_free then record 3;
  let use_heap = use_heap || use_free in

  (* --- sibling unit defining the size-less extern array (§4.3) ----- *)
  let ext_site, ext_unit =
    if not use_ext then (None, None)
    else begin
      let e = elems.(seed mod 3) in
      let extent = Rng.int_range ctx.rng 8 24 in
      let name = "extbuf" in
      let b = Buffer.create 256 in
      Printf.bprintf b "%s %s[%d];\n" (elem_name e) name extent;
      Printf.bprintf b "void ext_fill(void) {\n  long i;\n";
      Printf.bprintf b "  for (i = 0; i < %d; i++) %s[i] = i * 5 %% 90;\n"
        extent name;
      Printf.bprintf b "}\n";
      prod ctx "extern.size_less";
      elem_prod ctx e;
      ( Some
          {
            si_array = name;
            si_extent = extent;
            si_elem = e;
            si_region = Extern;
            si_wide_sb = true;
          },
        Some (Buffer.contents b) )
    end
  in

  (* --- main unit ---------------------------------------------------- *)
  (match ext_site with
  | Some s ->
      pf ctx "extern %s %s[];\n" (elem_name s.si_elem) s.si_array;
      pf ctx "void ext_fill(void);\n\n"
  | None -> ());

  (* struct definitions *)
  let struct_name = ref "" and box_name = ref "" in
  let struct_fields = ref [] in
  if use_struct then begin
    prod ctx "struct.def";
    struct_name := fresh ctx "pt";
    let fields =
      List.map
        (fun fname ->
          let e = Rng.choose ctx.rng elems in
          elem_prod ctx e;
          (fname, e))
        [ "x"; "y"; "t" ]
    in
    struct_fields := fields;
    pf ctx "struct %s {" !struct_name;
    List.iter (fun (f, e) -> pf ctx " %s %s;" (elem_name e) f) fields;
    pf ctx " };\n";
    if use_nested then begin
      prod ctx "struct.nested";
      box_name := fresh ctx "box";
      pf ctx "struct %s { struct %s p; long w; };\n" !box_name !struct_name
    end;
    pf ctx "\n"
  end;

  (* globals *)
  for _ = 1 to Rng.int_range ctx.rng 0 2 do
    let g = fresh ctx "g" in
    let e = Rng.choose ctx.rng elems in
    let extent = Rng.int_range ctx.rng 4 16 in
    prod ctx "global.array";
    elem_prod ctx e;
    pf ctx "%s %s[%d];\n" (elem_name e) g extent;
    ctx.arrays :=
      {
        si_array = g;
        si_extent = extent;
        si_elem = e;
        si_region = Global;
        si_wide_sb = false;
      }
      :: !(ctx.arrays)
  done;
  (let gs = fresh ctx "gs" in
   let e = Rng.choose ctx.rng elems in
   prod ctx "global.scalar";
   elem_prod ctx e;
   pf ctx "%s %s = %d;\n" (elem_name e) gs (Rng.int_range ctx.rng 0 40);
   ctx.scalars := (gs, e) :: !(ctx.scalars));
  pf ctx "\n";

  (* helper call graph: later helpers may call earlier ones *)
  for _ = 1 to Rng.int_range ctx.rng 1 2 do
    gen_helper ctx
  done;
  if use_ptr_helper then gen_ptr_helper ctx;

  (* main *)
  pf ctx "int main(void) {\n";
  pf ctx "  long acc = 0;\n";
  let saved_globals_arrays = !(ctx.arrays) in
  ctx.scalars := ("acc", Long) :: !(ctx.scalars);

  (* local arrays: [a1] is always a long array (pointer-helper fodder);
     the second rotates through the element types *)
  let n_arrays = Rng.int_range ctx.rng 2 3 in
  for k = 0 to n_arrays - 1 do
    let a = fresh ctx "a" in
    let e = if k = 0 then Long else elems.((seed + k) mod 3) in
    let extent = Rng.int_range ctx.rng 4 16 in
    let heap = use_heap && k = n_arrays - 1 in
    elem_prod ctx e;
    if heap then begin
      prod ctx "heap.array";
      pf ctx "  %s *%s = (%s *)malloc(%d * sizeof(%s));\n" (elem_name e) a
        (elem_name e) extent (elem_name e)
    end
    else begin
      prod ctx "local.array";
      pf ctx "  %s %s[%d];\n" (elem_name e) a extent
    end;
    let s =
      {
        si_array = a;
        si_extent = extent;
        si_elem = e;
        si_region = (if heap then Heap else Stack);
        si_wide_sb = false;
      }
    in
    emit_init_loop ctx ~indent:2 s;
    ctx.arrays := s :: !(ctx.arrays)
  done;
  (* init global arrays too *)
  List.iter (emit_init_loop ctx ~indent:2) saved_globals_arrays;

  (* struct locals *)
  if use_struct then begin
    let sv = fresh ctx "s" in
    pf ctx "  struct %s %s;\n" !struct_name sv;
    List.iter
      (fun (f, e) ->
        elem_prod ctx e;
        pf ctx "  %s.%s = %d;\n" sv f (Rng.int_range ctx.rng 0 60))
      !struct_fields;
    ctx.spaths :=
      List.map (fun (f, e) -> (Printf.sprintf "%s.%s" sv f, e))
        !struct_fields
      @ !(ctx.spaths);
    (* pointer to struct: arrow access *)
    if Rng.bool ctx.rng then begin
      prod ctx "struct.arrow";
      let sp = fresh ctx "sp" in
      pf ctx "  struct %s *%s = &%s;\n" !struct_name sp sv;
      ctx.spaths :=
        List.map
          (fun (f, e) -> (Printf.sprintf "%s->%s" sp f, e))
          !struct_fields
        @ !(ctx.spaths)
    end;
    if use_nested then begin
      let bv = fresh ctx "b" in
      pf ctx "  struct %s %s;\n" !box_name bv;
      List.iter
        (fun (f, _) ->
          pf ctx "  %s.p.%s = %d;\n" bv f (Rng.int_range ctx.rng 0 60))
        !struct_fields;
      pf ctx "  %s.w = %d;\n" bv (Rng.int_range ctx.rng 0 60);
      prod ctx "struct.nested";
      ctx.spaths :=
        ((bv ^ ".w"), Long)
        :: List.map
             (fun (f, e) -> (Printf.sprintf "%s.p.%s" bv f, e))
             !struct_fields
        @ !(ctx.spaths)
    end;
    if use_struct_cpy then begin
      prod ctx "struct.memcpy";
      let s2 = fresh ctx "s" in
      pf ctx "  struct %s %s;\n" !struct_name s2;
      pf ctx "  memcpy(&%s, &%s, sizeof(struct %s));\n" s2 sv !struct_name;
      ctx.spaths :=
        List.map (fun (f, e) -> (Printf.sprintf "%s.%s" s2 f, e))
          !struct_fields
        @ !(ctx.spaths)
    end
  end;

  (* the extern array is initialized by its defining unit *)
  (match ext_site with
  | Some s ->
      pf ctx "  ext_fill();\n";
      ctx.arrays := s :: !(ctx.arrays)
  | None -> ());

  (* pointers into arrays (in-bounds by construction) *)
  let n_ptrs = Rng.int_range ctx.rng 1 2 in
  for _ = 1 to n_ptrs do
    let s = pick ctx !(ctx.arrays) in
    let off = Rng.int ctx.rng (s.si_extent - 1) in
    let p = fresh ctx "p" in
    prod ctx "ptr.arith";
    if off = 0 then
      pf ctx "  %s *%s = %s;\n" (elem_name s.si_elem) p s.si_array
    else
      pf ctx "  %s *%s = &%s[%d];\n" (elem_name s.si_elem) p s.si_array off;
    ctx.ptrs := (p, s.si_elem, s.si_extent - off) :: !(ctx.ptrs);
    (* occasionally derive a second pointer by arithmetic *)
    if Rng.bool ctx.rng && s.si_extent - off > 2 then begin
      let q = fresh ctx "q" in
      let j = Rng.int_range ctx.rng 1 (s.si_extent - off - 1) in
      pf ctx "  %s *%s = %s + %d;\n" (elem_name s.si_elem) q p j;
      ctx.ptrs := (q, s.si_elem, s.si_extent - off - j) :: !(ctx.ptrs)
    end
  done;

  (* int<->ptr round-trip: the integer is address-derived and must never
     reach program output, so it lives in its own (untracked) names *)
  if use_intptr && !(ctx.ptrs) <> [] then begin
    prod ctx "cast.int_ptr";
    let p, e, rem = pick ctx !(ctx.ptrs) in
    let ip = fresh ctx "ip" in
    let rp = fresh ctx "rp" in
    pf ctx "  long %s = (long)%s;\n" ip p;
    pf ctx "  %s *%s = (%s *)%s;\n" (elem_name e) rp (elem_name e) ip;
    pf ctx "  acc += %s[%d];\n" rp (Rng.int ctx.rng rem);
    ctx.ptrs := (rp, e, rem) :: !(ctx.ptrs)
  end;

  (* byte intrinsics over generated buffers *)
  let byte_len (s : site) max_elems =
    elem_size s.si_elem * min max_elems s.si_extent
  in
  if use_memset then begin
    prod ctx "intrinsic.memset";
    let s = pick ctx !(ctx.arrays) in
    pf ctx "  memset(%s, %d, %d);\n" s.si_array
      (Rng.int ctx.rng 17)
      (byte_len s (Rng.int_range ctx.rng 1 8))
  end;
  if use_memcpy && List.length !(ctx.arrays) >= 2 then begin
    prod ctx "intrinsic.memcpy";
    let s1 = pick ctx !(ctx.arrays) in
    let rest = List.filter (fun s -> s.si_array <> s1.si_array) !(ctx.arrays) in
    let s2 = pick ctx rest in
    let n = min (byte_len s1 8) (byte_len s2 8) in
    pf ctx "  memcpy(%s, %s, %d);\n" s1.si_array s2.si_array n
  end;
  if use_memmove then begin
    prod ctx "intrinsic.memmove";
    (* overlapping move inside one array *)
    let s = pick ctx !(ctx.arrays) in
    let esz = elem_size s.si_elem in
    let o1 = Rng.int ctx.rng 2 and o2 = Rng.int ctx.rng 2 in
    let room = s.si_extent - max o1 o2 in
    let n = esz * max 1 (min room (Rng.int_range ctx.rng 1 6)) in
    pf ctx "  memmove(%s + %d, %s + %d, %d);\n" s.si_array o1 s.si_array o2 n
  end;

  (* the statement soup *)
  for _ = 1 to Rng.int_range ctx.rng 3 7 do
    if Rng.int ctx.rng 3 = 0 then gen_loop ctx ~indent:2 ~depth:2
    else gen_stmt ctx ~indent:2 ~depth:2
  done;

  (* digest epilogue: print everything address-independent *)
  pf ctx "  print_int(acc);\n";
  List.iter
    (fun (s : site) ->
      let i = fresh ctx "k" in
      pf ctx "  { long %s; long h = 0;\n" i;
      pf ctx "    for (%s = 0; %s < %d; %s++) h = h * 31 + %s[%s];\n" i i
        s.si_extent i s.si_array i;
      pf ctx "    print_int(h %% 1000000007); }\n")
    !(ctx.arrays);
  List.iter
    (fun (s, _) -> pf ctx "  print_int(%s %% 997);\n" s)
    !(ctx.scalars);
  List.iter
    (fun (path, _) -> pf ctx "  print_int(%s %% 997);\n" path)
    !(ctx.spaths);
  pf ctx "%s" spatial_anchor;

  (* free epilogue: heap objects die only after every digest print, so
     the safe program never touches a dead object — the lock-and-key
     checker must run it clean *)
  let frees =
    if use_free then
      List.filter (fun s -> s.si_region = Heap) (List.rev !(ctx.arrays))
    else []
  in
  if frees <> [] then prod ctx "heap.free";
  List.iter (fun s -> pf ctx "  free(%s);\n" s.si_array) frees;
  pf ctx "%s" main_suffix;

  let sites = List.rev !(ctx.arrays) in
  let productions =
    List.sort_uniq String.compare
      (Hashtbl.fold (fun k () a -> k :: a) ctx.prods [])
  in
  (* every enablement source recorded independently above; the published
     vector is the deduplicated, sorted set *)
  let features = List.sort_uniq compare !feats in
  let sources =
    (match ext_unit with
    | Some code -> [ Bench.src "ext" code ]
    | None -> [])
    @ [ Bench.src "main" (Buffer.contents ctx.buf) ]
  in
  {
    p_seed = seed;
    p_sources = sources;
    p_sites = sites;
    p_frees = frees;
    p_productions = productions;
    p_features = features;
  }

(* ------------------------------------------------------------------ *)
(* Unsafe mutants                                                      *)
(* ------------------------------------------------------------------ *)

type access = Read | Write

let access_name = function Read -> "read" | Write -> "write"

(** The hazard class a mutant injects.  [Spatial] is an out-of-bounds
    access to a live object (the spatial checkers' territory); [Uaf] and
    [Double_free] touch a heap object {e after} the program's free
    epilogue killed it (the temporal checker's territory).  The judge
    ({!Oracle.judge_mutant}) holds each checker to its own class and
    excuses the others with a written justification. *)
type mutant_kind = Spatial | Uaf | Double_free

let mutant_kind_name = function
  | Spatial -> "oob"
  | Uaf -> "uaf"
  | Double_free -> "dfree"

(** One derived unsafe program: the original with a single known-bad
    statement spliced into [main].  Spatial mutants index past the
    Low-Fat size class of the site ([max 16 (round_up_pow2 (size+1))],
    the runtime's own geometry), so both spatial approaches must report
    — except SoftBound on a size-less extern declaration, whose wide
    upper bound cannot see the overflow (§4.3): those carry the
    whitelist justification instead.  Temporal mutants access (or
    re-free) a freed heap site in bounds, so only the lock-and-key
    checker can report. *)
type mutant = {
  m_prog : prog;
  m_site : site;
  m_kind : mutant_kind;
  m_access : access;
  m_index : int;
  m_sources : Bench.source list;
  m_sb_whitelist : string option;
      (** [Some why]: SoftBound is excused from reporting, with the
          written justification *)
}

let mutant_name (m : mutant) =
  match m.m_kind with
  | Spatial ->
      Printf.sprintf "seed%d/%s-%s[%d]-%s" m.m_prog.p_seed
        (region_name m.m_site.si_region)
        m.m_site.si_array m.m_index
        (access_name m.m_access)
  | Uaf ->
      Printf.sprintf "seed%d/uaf-%s-%s[%d]-%s" m.m_prog.p_seed
        (region_name m.m_site.si_region)
        m.m_site.si_array m.m_index
        (access_name m.m_access)
  | Double_free ->
      Printf.sprintf "seed%d/dfree-%s-%s" m.m_prog.p_seed
        (region_name m.m_site.si_region)
        m.m_site.si_array

(* first element index past the Low-Fat size class of the object *)
let oob_index (s : site) =
  let size = s.si_extent * elem_size s.si_elem in
  let cls = max 16 (Mi_support.Util.round_up_pow2 (size + 1)) in
  (cls / elem_size s.si_elem) + 1

(* first occurrence of [sub] in [code] *)
let find_sub code sub =
  let n = String.length code and m = String.length sub in
  let rec go i =
    if i + m > n then None
    else if String.sub code i m = sub then Some i
    else go (i + 1)
  in
  go 0

(* splice [stmt] into the main unit, immediately before the first
   occurrence of [anchor] *)
let splice_main ~anchor stmt (sources : Bench.source list) =
  List.map
    (fun (s : Bench.source) ->
      if s.src_name <> "main" then s
      else
        match find_sub s.code anchor with
        | Some i ->
            {
              s with
              code =
                String.sub s.code 0 i ^ stmt
                ^ String.sub s.code i (String.length s.code - i);
            }
        | None -> invalid_arg "Gen.splice_main: unexpected main-unit shape")
    sources

(** Derive the [mseed]-th spatial mutant of [prog]: one out-of-bounds
    access to a live object, spliced at the {!spatial_anchor} (before
    the free epilogue).  Deterministic.  Most mutants target
    precisely-bounded sites; with low probability a size-less extern
    site is chosen instead to exercise the whitelist path. *)
let mutate (prog : prog) ~mseed : mutant =
  let rng = Rng.create (((prog.p_seed * 8191) + mseed) * 2) in
  let precise, wide =
    List.partition (fun s -> not s.si_wide_sb) prog.p_sites
  in
  let site =
    if wide <> [] && (precise = [] || Rng.int rng 8 = 0) then
      List.nth wide (Rng.int rng (List.length wide))
    else List.nth precise (Rng.int rng (List.length precise))
  in
  let access = if Rng.bool rng then Read else Write in
  let index = oob_index site in
  (* the access must stay observable: a read feeds [print_int] (a load
     into dead [acc] would be DCE'd at O3 before the late instrumentation
     point, deleting the check with it); a store has a side effect and
     survives on its own *)
  let stmt =
    match access with
    | Write -> Printf.sprintf "  %s[%d] = 1;\n" site.si_array index
    | Read -> Printf.sprintf "  print_int(%s[%d]);\n" site.si_array index
  in
  {
    m_prog = prog;
    m_site = site;
    m_kind = Spatial;
    m_access = access;
    m_index = index;
    m_sources = splice_main ~anchor:spatial_anchor stmt prog.p_sources;
    m_sb_whitelist =
      (if site.si_wide_sb then
         Some
           (Printf.sprintf
              "size-less extern declaration %s[]: SoftBound carries a wide \
               upper bound (§4.3), so an overflow past the definition is \
               not reportable by design"
              site.si_array)
       else None);
  }

(** Derive the [mseed]-th temporal mutant of [prog]: an in-bounds
    access to — or a second [free] of — a heap object the free epilogue
    already killed, spliced after the frees.  [None] when the program
    freed nothing ({!prog.p_frees} empty); callers fall back to
    {!mutate}.  Deterministic.  The spatial checkers' bounds metadata is
    unaffected by [free], so only the lock-and-key checker can report
    these. *)
let mutate_temporal (prog : prog) ~mseed : mutant option =
  match prog.p_frees with
  | [] -> None
  | frees ->
      let rng = Rng.create (((prog.p_seed * 4099) + mseed) * 2) in
      let site = List.nth frees (Rng.int rng (List.length frees)) in
      let kind = if Rng.int rng 3 = 0 then Double_free else Uaf in
      let access = if Rng.bool rng then Read else Write in
      let stmt =
        match kind with
        | Double_free -> Printf.sprintf "  free(%s);\n" site.si_array
        (* in bounds on purpose: the only thing wrong is the lifetime *)
        | _ when access = Write -> Printf.sprintf "  %s[0] = 1;\n" site.si_array
        | _ -> Printf.sprintf "  print_int(%s[0]);\n" site.si_array
      in
      Some
        {
          m_prog = prog;
          m_site = site;
          m_kind = kind;
          m_access = access;
          m_index = 0;
          m_sources = splice_main ~anchor:main_suffix stmt prog.p_sources;
          m_sb_whitelist = None;
        }

(* ------------------------------------------------------------------ *)
(* Structural evolution: splice and grow                               *)
(* ------------------------------------------------------------------ *)

(* The coverage-guided loop breeds offspring from corpus entries by
   operating on the generator's AST (parse → transform → re-print), so
   every offspring is well-typed MiniC by construction and the safe
   oracle keeps applying:

   - {!splice} grafts a helper function (with its transitive closure of
     callee helpers and referenced globals, all α-renamed) from a donor
     program into an acceptor and calls it from [main];
   - {!grow} inserts fresh control flow — a bounded counting loop
     around an existing statement, or a bounded arithmetic-iteration
     epilogue — into [main].

   Both operations change the control-flow geometry of the offspring's
   functions, so its {!Mi_obs.Coverage} cells are disjoint from the
   parent's (the cell key hashes the full successor geometry): novelty
   is structural, never a re-count of old ground.  Soundness argument
   (DESIGN.md "Fuzzing"): generator helper bodies only reference their
   parameters, locals, earlier helpers and global arrays/scalars — all
   copied and renamed along — and VM globals are zero-initialized, so a
   grafted helper computes deterministically in the acceptor; grown
   loops are bounded by construction and duplicate only statements
   without declarations or frees. *)

module Ast = Mi_minic.Ast
module Ctypes = Mi_minic.Ctypes
module Cparse = Mi_minic.Cparse

let pos0 = { Ast.line = 0; Ast.col = 0 }
let e_ k = { Ast.e = k; Ast.epos = pos0 }
let s_ k = { Ast.s = k; Ast.spos = pos0 }
let eint n = e_ (Ast.Eint n)
let eid n = e_ (Ast.Eident n)
let ebin op a b = e_ (Ast.Ebin (op, a, b))

(* normalized non-negative modulus, mirroring the generator's
   always-in-bounds index idiom *)
let emodn e n = ebin Ast.Bmod (ebin Ast.Badd (ebin Ast.Bmod e (eint n)) (eint n)) (eint n)

let rec map_idents_e f (e : Ast.expr) : Ast.expr =
  let m = map_idents_e f in
  let k =
    match e.Ast.e with
    | Ast.Eident id -> Ast.Eident (f id)
    | Ast.Ecall (g, args) -> Ast.Ecall (f g, List.map m args)
    | Ast.Ebin (op, a, b) -> Ast.Ebin (op, m a, m b)
    | Ast.Eun (op, a) -> Ast.Eun (op, m a)
    | Ast.Eassign (a, b) -> Ast.Eassign (m a, m b)
    | Ast.Eopassign (op, a, b) -> Ast.Eopassign (op, m a, m b)
    | Ast.Eincdec (w, d, a) -> Ast.Eincdec (w, d, m a)
    | Ast.Eindex (a, i) -> Ast.Eindex (m a, m i)
    | Ast.Emember (a, fl) -> Ast.Emember (m a, fl)
    | Ast.Earrow (a, fl) -> Ast.Earrow (m a, fl)
    | Ast.Ederef a -> Ast.Ederef (m a)
    | Ast.Eaddr a -> Ast.Eaddr (m a)
    | Ast.Ecast (t, a) -> Ast.Ecast (t, m a)
    | Ast.Esizeof_e a -> Ast.Esizeof_e (m a)
    | Ast.Econd (c, a, b) -> Ast.Econd (m c, m a, m b)
    | (Ast.Eint _ | Ast.Efloat _ | Ast.Estr _ | Ast.Esizeof_ty _) as k -> k
  in
  { e with Ast.e = k }

let rec map_idents_init f = function
  | Ast.Iexpr e -> Ast.Iexpr (map_idents_e f e)
  | Ast.Ilist l -> Ast.Ilist (List.map (map_idents_init f) l)

let rec map_idents_s f (s : Ast.stmt) : Ast.stmt =
  let ms = List.map (map_idents_s f) in
  let me = map_idents_e f in
  let k =
    match s.Ast.s with
    | Ast.Sexpr e -> Ast.Sexpr (me e)
    | Ast.Sdecl (t, n, i) -> Ast.Sdecl (t, n, Option.map (map_idents_init f) i)
    | Ast.Sif (c, a, b) -> Ast.Sif (me c, ms a, ms b)
    | Ast.Swhile (c, b) -> Ast.Swhile (me c, ms b)
    | Ast.Sdo (b, c) -> Ast.Sdo (ms b, me c)
    | Ast.Sfor (i, c, st, b) ->
        Ast.Sfor
          (Option.map (map_idents_s f) i, Option.map me c, Option.map me st, ms b)
    | Ast.Sreturn e -> Ast.Sreturn (Option.map me e)
    | (Ast.Sbreak | Ast.Scontinue) as k -> k
    | Ast.Sblock b -> Ast.Sblock (ms b)
    | Ast.Sseq b -> Ast.Sseq (ms b)
  in
  { s with Ast.s = k }

(* all identifiers (variables and callees) a subtree references *)
let rec idents_e acc (e : Ast.expr) =
  match e.Ast.e with
  | Ast.Eident id -> id :: acc
  | Ast.Ecall (g, args) -> List.fold_left idents_e (g :: acc) args
  | Ast.Ebin (_, a, b) | Ast.Eassign (a, b) | Ast.Eopassign (_, a, b)
  | Ast.Eindex (a, b) ->
      idents_e (idents_e acc a) b
  | Ast.Eun (_, a) | Ast.Eincdec (_, _, a) | Ast.Emember (a, _)
  | Ast.Earrow (a, _) | Ast.Ederef a | Ast.Eaddr a | Ast.Ecast (_, a)
  | Ast.Esizeof_e a ->
      idents_e acc a
  | Ast.Econd (c, a, b) -> idents_e (idents_e (idents_e acc c) a) b
  | Ast.Eint _ | Ast.Efloat _ | Ast.Estr _ | Ast.Esizeof_ty _ -> acc

let rec idents_init acc = function
  | Ast.Iexpr e -> idents_e acc e
  | Ast.Ilist l -> List.fold_left idents_init acc l

let rec idents_s acc (s : Ast.stmt) =
  match s.Ast.s with
  | Ast.Sexpr e -> idents_e acc e
  | Ast.Sdecl (_, _, i) -> (
      match i with Some i -> idents_init acc i | None -> acc)
  | Ast.Sif (c, a, b) ->
      List.fold_left idents_s (List.fold_left idents_s (idents_e acc c) a) b
  | Ast.Swhile (c, b) -> List.fold_left idents_s (idents_e acc c) b
  | Ast.Sdo (b, c) -> idents_e (List.fold_left idents_s acc b) c
  | Ast.Sfor (i, c, st, b) ->
      let acc = match i with Some i -> idents_s acc i | None -> acc in
      let acc = match c with Some c -> idents_e acc c | None -> acc in
      let acc = match st with Some st -> idents_e acc st | None -> acc in
      List.fold_left idents_s acc b
  | Ast.Sreturn (Some e) -> idents_e acc e
  | Ast.Sreturn None | Ast.Sbreak | Ast.Scontinue -> acc
  | Ast.Sblock b | Ast.Sseq b -> List.fold_left idents_s acc b

let func_idents (fn : Ast.func) = List.fold_left idents_s [] fn.Ast.f_body

let find_main_src (sources : Bench.source list) =
  List.find_opt (fun (s : Bench.source) -> s.Bench.src_name = "main") sources

let with_main_code (sources : Bench.source list) code =
  List.map
    (fun (s : Bench.source) ->
      if s.Bench.src_name = "main" then { s with Bench.code } else s)
    sources

(* integer-typed (non-pointer, non-array) parameters only: such a
   helper can be called from any context with a constant argument *)
let graftable (fn : Ast.func) =
  fn.Ast.f_name <> "main"
  && fn.Ast.f_params <> []
  && List.for_all
       (fun (p : Ast.param) ->
         match p.Ast.p_ty with
         | Ctypes.Cptr _ | Ctypes.Carr _ -> false
         | _ -> true)
       fn.Ast.f_params

(* wrap a copy of [stmt] in a bounded counting loop with a fresh
   counter; inserted right after the original, so every name the copy
   references is still in scope *)
let wrap_in_loop ~ctr ~n stmt =
  s_
    (Ast.Sblock
       [
         s_ (Ast.Sdecl (Ctypes.Clong, ctr, Some (Ast.Iexpr (eint 0))));
         s_
           (Ast.Swhile
              ( ebin Ast.Blt (eid ctr) (eint n),
                [
                  stmt;
                  s_
                    (Ast.Sexpr
                       (e_
                          (Ast.Eassign
                             (eid ctr, ebin Ast.Badd (eid ctr) (eint 1)))));
                ] ));
       ])

(* insert [stmts] immediately before the trailing return of a body *)
let insert_before_return stmts body =
  let rec go = function
    | [ ({ Ast.s = Ast.Sreturn _; _ } as r) ] -> stmts @ [ r ]
    | [ last ] -> last :: stmts
    | s :: rest -> s :: go rest
    | [] -> stmts
  in
  go body

(** Splice: graft one graftable helper of [donor] — with the transitive
    closure of the donor helpers it calls and the donor globals it
    references, all α-renamed with an ["_x<mseed>"] suffix — into
    [acceptor], and print its value from [main].  Returns [None] when
    either program has no parseable main unit or the donor has no
    graftable helper.  Deterministic in [(acceptor, donor, mseed)];
    campaign drivers keep [mseed] globally unique so repeated splices
    into one lineage never collide (generator names contain no ['_']
    except [ext_fill], which is never grafted). *)
let splice ~(acceptor : Bench.source list) ~(donor : Bench.source list)
    ~mseed : Bench.source list option =
  match (find_main_src acceptor, find_main_src donor) with
  | Some amain, Some dmain -> (
      try
        let aprog = Cparse.parse_program amain.Bench.code in
        let dprog = Cparse.parse_program dmain.Bench.code in
        let rng = Rng.create ((mseed * 2) + 1) in
        let dfuncs =
          List.filter_map
            (function
              | Ast.Dfunc f when f.Ast.f_name <> "main" -> Some f | _ -> None)
            dprog
        in
        let dglobals =
          List.filter_map
            (function
              | Ast.Dglobal g when not g.Ast.g_extern -> Some g | _ -> None)
            dprog
        in
        let candidates = List.filter graftable dfuncs in
        if candidates = [] then None
        else begin
          let root = List.nth candidates (Rng.int rng (List.length candidates)) in
          (* transitive closure of donor helpers/globals [root] needs *)
          let fnames = List.map (fun f -> f.Ast.f_name) dfuncs in
          let gnames = List.map (fun g -> g.Ast.g_name) dglobals in
          let needed = Hashtbl.create 16 in
          let rec need fn =
            if not (Hashtbl.mem needed fn.Ast.f_name) then begin
              Hashtbl.replace needed fn.Ast.f_name ();
              List.iter
                (fun id ->
                  if List.mem id gnames then Hashtbl.replace needed id ()
                  else if List.mem id fnames then
                    match
                      List.find_opt (fun f -> f.Ast.f_name = id) dfuncs
                    with
                    | Some callee -> need callee
                    | None -> ())
                (func_idents fn)
            end
          in
          need root;
          let suffix = Printf.sprintf "_x%d" mseed in
          let rn id = if Hashtbl.mem needed id then id ^ suffix else id in
          let grafted =
            List.filter_map
              (function
                | Ast.Dglobal g when Hashtbl.mem needed g.Ast.g_name ->
                    Some
                      (Ast.Dglobal
                         {
                           g with
                           Ast.g_name = rn g.Ast.g_name;
                           Ast.g_init = Option.map (map_idents_init rn) g.Ast.g_init;
                         })
                | Ast.Dfunc f when Hashtbl.mem needed f.Ast.f_name ->
                    Some
                      (Ast.Dfunc
                         {
                           f with
                           Ast.f_name = rn f.Ast.f_name;
                           Ast.f_body = List.map (map_idents_s rn) f.Ast.f_body;
                         })
                | _ -> None)
              dprog
          in
          let arg = Rng.int_range rng 1 9 in
          (* drive the graft from a small counting loop with a varying
             argument: the loop both exercises the helper on several
             inputs and changes main's control-flow geometry, so the
             offspring's main cells are fresh, not a re-count *)
          let ctr = "spc" ^ suffix in
          let call =
            s_
              (Ast.Sexpr
                 (e_
                    (Ast.Ecall
                       ( "print_int",
                         [
                           emodn
                             (e_
                                (Ast.Ecall
                                   ( rn root.Ast.f_name,
                                     [ ebin Ast.Badd (eint arg) (eid ctr) ] )))
                             997;
                         ] ))))
          in
          let call = wrap_in_loop ~ctr ~n:3 call in
          let out = ref [] and placed = ref false in
          List.iter
            (fun d ->
              match d with
              | Ast.Dfunc f when f.Ast.f_name = "main" && not !placed ->
                  placed := true;
                  out :=
                    Ast.Dfunc
                      { f with Ast.f_body = insert_before_return [ call ] f.Ast.f_body }
                    :: List.rev_append grafted !out
              | d -> out := d :: !out)
            aprog;
          if not !placed then None
          else
            Some
              (with_main_code acceptor
                 (Cprint.program_to_string (List.rev !out)))
        end
      with _ -> None)
  | _ -> None

(* a statement is duplication-safe when re-executing a copy of it right
   after the original preserves safety and termination: no declarations
   (redefinition), no [free]/[malloc] (lifetime), no return/break/
   continue at its own level (control escape) *)
let rec dup_safe (s : Ast.stmt) =
  match s.Ast.s with
  | Ast.Sdecl _ | Ast.Sreturn _ | Ast.Sbreak | Ast.Scontinue -> false
  | Ast.Sexpr e -> expr_dup_safe e
  | Ast.Sif (c, a, b) ->
      expr_dup_safe c && List.for_all dup_safe a && List.for_all dup_safe b
  | Ast.Swhile (c, b) -> expr_dup_safe c && List.for_all dup_safe b
  | Ast.Sdo (b, c) -> expr_dup_safe c && List.for_all dup_safe b
  | Ast.Sfor (i, c, st, b) ->
      (match i with Some i -> dup_safe i | None -> true)
      && (match c with Some c -> expr_dup_safe c | None -> true)
      && (match st with Some st -> expr_dup_safe st | None -> true)
      && List.for_all dup_safe b
  | Ast.Sblock b | Ast.Sseq b -> List.for_all dup_safe b

and expr_dup_safe (e : Ast.expr) =
  List.for_all (fun id -> id <> "free" && id <> "malloc") (idents_e [] e)

(* a bounded arithmetic-iteration epilogue over [acc] (always in scope
   in generated mains): fresh if/while geometry plus an observing
   [print_int], step-capped so fuel use stays bounded *)
let iteration_epilogue ~stem =
  let v = stem ^ "v" and st = stem ^ "s" in
  [
    s_ (Ast.Sdecl (Ctypes.Clong, v, Some (Ast.Iexpr (ebin Ast.Badd (emodn (eid "acc") 23) (eint 5)))));
    s_ (Ast.Sdecl (Ctypes.Clong, st, Some (Ast.Iexpr (eint 0))));
    s_
      (Ast.Swhile
         ( ebin Ast.Bland
             (ebin Ast.Bgt (eid v) (eint 1))
             (ebin Ast.Blt (eid st) (eint 40)),
           [
             s_
               (Ast.Sif
                  ( ebin Ast.Beq (ebin Ast.Bmod (eid v) (eint 2)) (eint 0),
                    [ s_ (Ast.Sexpr (e_ (Ast.Eassign (eid v, ebin Ast.Bdiv (eid v) (eint 2))))) ],
                    [
                      s_
                        (Ast.Sexpr
                           (e_
                              (Ast.Eassign
                                 ( eid v,
                                   ebin Ast.Badd
                                     (ebin Ast.Bmul (eid v) (eint 3))
                                     (eint 1) ))));
                    ] ));
             s_ (Ast.Sexpr (e_ (Ast.Eassign (eid st, ebin Ast.Badd (eid st) (eint 1)))));
           ] ));
    s_
      (Ast.Sexpr
         (e_
            (Ast.Ecall
               ("print_int", [ emodn (ebin Ast.Badd (eid v) (eid st)) 997 ]))));
  ]

(** Grow: insert fresh control flow into [main] — either a bounded
    counting loop wrapping a copy of an existing duplication-safe
    statement, or a bounded arithmetic-iteration epilogue before the
    trailing return (always the fallback when nothing is wrappable).
    Optionally also duplicates one safe statement in place.  The new
    loop/branch changes [main]'s control-flow geometry, so the
    offspring's coverage cells are guaranteed disjoint from the
    parent's — a straight-line insertion would count nothing new.
    Returns [None] when the sources have no parseable main unit.
    Deterministic in [(sources, mseed)]; fresh names are prefixed
    ["gw<mseed>"], so campaign-unique [mseed]s never collide. *)
let grow ~(sources : Bench.source list) ~mseed : Bench.source list option =
  match find_main_src sources with
  | None -> None
  | Some main -> (
      try
        let prog = Cparse.parse_program main.Bench.code in
        let rng = Rng.create ((mseed * 4) + 3) in
        let stem = Printf.sprintf "gw%d" mseed in
        let grow_body body =
          let wrappable =
            List.concat
              (List.mapi (fun i s -> if dup_safe s then [ (i, s) ] else []) body)
          in
          let body =
            if wrappable <> [] && Rng.int rng 3 > 0 then begin
              let i, s0 =
                List.nth wrappable (Rng.int rng (List.length wrappable))
              in
              let n = Rng.int_range rng 2 4 in
              let wrapped = wrap_in_loop ~ctr:(stem ^ "c") ~n s0 in
              List.concat (List.mapi (fun j s -> if j = i then [ s; wrapped ] else [ s ]) body)
            end
            else insert_before_return (iteration_epilogue ~stem) body
          in
          (* occasionally also duplicate one safe statement in place *)
          if Rng.int rng 2 = 0 then
            let dups =
              List.concat
                (List.mapi (fun i s -> if dup_safe s then [ (i, s) ] else []) body)
            in
            if dups = [] then body
            else
              let i, s0 = List.nth dups (Rng.int rng (List.length dups)) in
              List.concat
                (List.mapi (fun j s -> if j = i then [ s; s0 ] else [ s ]) body)
          else body
        in
        let out = ref [] and placed = ref false in
        List.iter
          (fun d ->
            match d with
            | Ast.Dfunc f when f.Ast.f_name = "main" && not !placed ->
                placed := true;
                out := Ast.Dfunc { f with Ast.f_body = grow_body f.Ast.f_body } :: !out
            | d -> out := d :: !out)
          prog;
        if not !placed then None
        else Some (with_main_code sources (Cprint.program_to_string (List.rev !out)))
      with _ -> None)
