(** Persistent, content-addressed fuzz corpus.

    One JSON file per entry, named by the digest of the entry's sources
    — the same content-addressing discipline as the instrumentation
    cache ({!Mi_bench_kit.Icache}): identical offspring bred twice map
    to one file, and an entry whose stored id disagrees with its
    recomputed content digest is quarantined (renamed [*.corrupt]) on
    load rather than trusted.  Writes go through a temp file followed
    by [Sys.rename], so a crash mid-write leaves either the complete
    old state or a [*.tmp] orphan the loader ignores — never a torn
    entry — which is what makes the soak loop's resume crash-safe.

    Each entry carries everything the evolutionary loop needs to
    rebuild its in-memory state by replaying entries in insertion
    ([en_ord]) order: the root generator seed and feature vector of the
    entry's lineage, the grammar productions it exercises, and the
    exact {!Mi_obs.Coverage} cell keys its reference run hit (so the
    global seen-set, the per-feature scores and the scheduler energies
    all reconstruct deterministically after a kill).  A small
    [state.json] checkpoint (next seed / round / exec counters) is
    written with the same atomic discipline after every round; losing
    it costs at most one round of re-execution, never an entry. *)

module Bench = Mi_bench_kit.Bench
module Json = Mi_obs.Json

type origin =
  | Seeded of int  (** generator-fresh, [Gen.generate ~seed] *)
  | Spliced of { sp_parent : string; sp_donor : string; sp_op : int }
  | Grown of { gr_parent : string; gr_op : int }

type entry = {
  en_id : string;  (** content digest of the sources; the filename stem *)
  en_ord : int;  (** insertion order, unique and monotone per corpus *)
  en_round : int;  (** soak round that admitted the entry *)
  en_origin : origin;
  en_seed : int;  (** root generator seed of the lineage *)
  en_features : int list;  (** root program's generator feature vector *)
  en_productions : string list;  (** grammar productions, sorted *)
  en_cells : string list;
      (** {!Mi_obs.Coverage.cells_of} of the entry's [-O0] reference
          run, sorted — replayed on load to rebuild the seen-set *)
  en_fresh : int;  (** cells this entry was first to hit, at admission *)
  en_fingerprint : string;
      (** {!Mi_obs.Coverage.fingerprint} of the reference run; replay
          verifies the recomputed fingerprint matches *)
  en_sources : Bench.source list;
}

let id_of_sources (sources : Bench.source list) =
  Digest.to_hex
    (Digest.string
       (String.concat "\x01"
          (List.concat_map
             (fun (s : Bench.source) -> [ s.Bench.src_name; s.Bench.code ])
             sources)))

let origin_kind = function
  | Seeded _ -> "seeded"
  | Spliced _ -> "spliced"
  | Grown _ -> "grown"

(* --- JSON ----------------------------------------------------------- *)

let origin_to_json = function
  | Seeded s -> Json.Obj [ ("kind", Json.Str "seeded"); ("seed", Json.Int s) ]
  | Spliced { sp_parent; sp_donor; sp_op } ->
      Json.Obj
        [
          ("kind", Json.Str "spliced");
          ("parent", Json.Str sp_parent);
          ("donor", Json.Str sp_donor);
          ("op", Json.Int sp_op);
        ]
  | Grown { gr_parent; gr_op } ->
      Json.Obj
        [
          ("kind", Json.Str "grown");
          ("parent", Json.Str gr_parent);
          ("op", Json.Int gr_op);
        ]

let entry_to_json (e : entry) =
  Json.Obj
    [
      ("id", Json.Str e.en_id);
      ("ord", Json.Int e.en_ord);
      ("round", Json.Int e.en_round);
      ("origin", origin_to_json e.en_origin);
      ("seed", Json.Int e.en_seed);
      ("features", Json.List (List.map (fun k -> Json.Int k) e.en_features));
      ( "productions",
        Json.List (List.map (fun p -> Json.Str p) e.en_productions) );
      ("cells", Json.List (List.map (fun c -> Json.Str c) e.en_cells));
      ("fresh", Json.Int e.en_fresh);
      ("fingerprint", Json.Str e.en_fingerprint);
      ( "sources",
        Json.List
          (List.map
             (fun (s : Bench.source) ->
               Json.Obj
                 [
                   ("name", Json.Str s.Bench.src_name);
                   ("code", Json.Str s.Bench.code);
                 ])
             e.en_sources) );
    ]

let fail fmt = Printf.ksprintf invalid_arg fmt

let member k j =
  match Json.member k j with
  | Some v -> v
  | None -> fail "Corpus.entry_of_json: missing %S" k

let as_str what = function
  | Json.Str s -> s
  | _ -> fail "Corpus.entry_of_json: %s is not a string" what

let as_int what = function
  | Json.Int i -> i
  | _ -> fail "Corpus.entry_of_json: %s is not an int" what

let as_list what = function
  | Json.List l -> l
  | _ -> fail "Corpus.entry_of_json: %s is not a list" what

let origin_of_json j =
  match as_str "origin.kind" (member "kind" j) with
  | "seeded" -> Seeded (as_int "origin.seed" (member "seed" j))
  | "spliced" ->
      Spliced
        {
          sp_parent = as_str "origin.parent" (member "parent" j);
          sp_donor = as_str "origin.donor" (member "donor" j);
          sp_op = as_int "origin.op" (member "op" j);
        }
  | "grown" ->
      Grown
        {
          gr_parent = as_str "origin.parent" (member "parent" j);
          gr_op = as_int "origin.op" (member "op" j);
        }
  | k -> fail "Corpus.entry_of_json: unknown origin kind %S" k

(** Strict parse + integrity check: the stored id must equal the
    recomputed content digest of the stored sources, and the stored
    fingerprint must equal the digest of the stored cell list.  Raises
    [Invalid_argument] otherwise — the loader quarantines. *)
let entry_of_json j =
  let e =
    {
      en_id = as_str "id" (member "id" j);
      en_ord = as_int "ord" (member "ord" j);
      en_round = as_int "round" (member "round" j);
      en_origin = origin_of_json (member "origin" j);
      en_seed = as_int "seed" (member "seed" j);
      en_features =
        List.map (as_int "features[]") (as_list "features" (member "features" j));
      en_productions =
        List.map
          (as_str "productions[]")
          (as_list "productions" (member "productions" j));
      en_cells =
        List.map (as_str "cells[]") (as_list "cells" (member "cells" j));
      en_fresh = as_int "fresh" (member "fresh" j);
      en_fingerprint = as_str "fingerprint" (member "fingerprint" j);
      en_sources =
        List.map
          (fun s ->
            Bench.src
              (as_str "sources[].name" (member "name" s))
              (as_str "sources[].code" (member "code" s)))
          (as_list "sources" (member "sources" j));
    }
  in
  if id_of_sources e.en_sources <> e.en_id then
    fail "Corpus.entry_of_json: id %s does not match its sources" e.en_id;
  if
    Digest.to_hex (Digest.string (String.concat "\n" e.en_cells))
    <> e.en_fingerprint
  then fail "Corpus.entry_of_json: fingerprint of %s is stale" e.en_id;
  e

(* --- persistence ---------------------------------------------------- *)

let rec mkdir_p dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    Sys.mkdir dir 0o755
  end

(* temp-then-rename, so the visible file is always complete *)
let write_atomic path contents =
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  output_string oc contents;
  close_out oc;
  Sys.rename tmp path

let entry_path ~dir (e : entry) = Filename.concat dir (e.en_id ^ ".json")

let save ~dir (e : entry) =
  mkdir_p dir;
  write_atomic (entry_path ~dir e) (Json.to_string (entry_to_json e) ^ "\n")

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let state_file = "state.json"

let is_entry_file name =
  name <> state_file
  && Filename.check_suffix name ".json"
  && String.length name > 0
  && name.[0] <> '.'

(** Load every entry of [dir], sorted by insertion order.  [*.tmp]
    orphans are ignored; unparseable or integrity-failing entries are
    quarantined in place (renamed [*.corrupt]) and skipped, so one torn
    or tampered file never poisons a resume. *)
let load ~dir : entry list =
  if not (Sys.file_exists dir && Sys.is_directory dir) then []
  else begin
    let files = Array.to_list (Sys.readdir dir) in
    let entries =
      List.filter_map
        (fun name ->
          if not (is_entry_file name) then None
          else
            let path = Filename.concat dir name in
            match entry_of_json (Json.of_string (read_file path)) with
            | e when e.en_id ^ ".json" = name -> Some e
            | _ | (exception _) ->
                (try Sys.rename path (path ^ ".corrupt") with _ -> ());
                None)
        (List.sort String.compare files)
    in
    List.sort
      (fun a b ->
        if a.en_ord <> b.en_ord then compare a.en_ord b.en_ord
        else String.compare a.en_id b.en_id)
      entries
  end

(** The soak loop's round checkpoint.  Everything here is derivable
    from the entries except the exec/seed counters of rounds that
    admitted nothing; losing the file costs at most one round of
    re-execution (re-admitted entries dedupe by content id). *)
type state = {
  st_next_seed : int;  (** next unconsumed base generator seed *)
  st_round : int;  (** next round number *)
  st_execs : int;  (** programs run through the matrix so far *)
  st_next_op : int;  (** next structural-mutation operation id *)
}

let state0 = { st_next_seed = 0; st_round = 0; st_execs = 0; st_next_op = 0 }

let state_to_json s =
  Json.Obj
    [
      ("next_seed", Json.Int s.st_next_seed);
      ("round", Json.Int s.st_round);
      ("execs", Json.Int s.st_execs);
      ("next_op", Json.Int s.st_next_op);
    ]

let save_state ~dir s =
  mkdir_p dir;
  write_atomic
    (Filename.concat dir state_file)
    (Json.to_string (state_to_json s) ^ "\n")

let load_state ~dir : state =
  let path = Filename.concat dir state_file in
  if not (Sys.file_exists path) then state0
  else
    try
      let j = Json.of_string (read_file path) in
      {
        st_next_seed = as_int "next_seed" (member "next_seed" j);
        st_round = as_int "round" (member "round" j);
        st_execs = as_int "execs" (member "execs" j);
        st_next_op = as_int "next_op" (member "next_op" j);
      }
    with _ -> state0

(** Remove every corpus file of [dir] (entries, checkpoint, orphans,
    quarantine) — a fresh start for deterministic benchmark runs. *)
let reset ~dir =
  if Sys.file_exists dir && Sys.is_directory dir then
    Array.iter
      (fun name ->
        let path = Filename.concat dir name in
        if
          (not (Sys.is_directory path))
          && (Filename.check_suffix name ".json"
             || Filename.check_suffix name ".tmp"
             || Filename.check_suffix name ".corrupt")
        then try Sys.remove path with _ -> ())
      (Sys.readdir dir)
