(** Deterministic corpus scheduler: which entries breed next.

    Every corpus entry carries an integer {e energy} — a
    recency-decayed novelty score.  An entry is admitted with energy
    proportional to what it just discovered (fresh coverage cells,
    plus a bonus per grammar production nobody had exercised); when an
    offspring is admitted, its parent is credited with the offspring's
    fresh cells, so lineages whose mutations keep paying are favored;
    and every round halves all energies, so a vein that stops yielding
    is abandoned in a few rounds rather than mined forever.

    Everything is integer arithmetic over corpus entries in insertion
    order, so the scheduler rebuilds bit-identically from a loaded
    corpus ({!rebuild}) after a crash or across [-j] settings — no
    hidden wall-clock or hash-order dependence.  {!pick} breaks energy
    ties toward the most recently admitted entry ([en_ord]
    descending), keeping exploration moving. *)

type t = {
  energy : (string, int) Hashtbl.t;  (** entry id -> current energy *)
  prods : (string, unit) Hashtbl.t;  (** productions seen at admission *)
}

let create () = { energy = Hashtbl.create 64; prods = Hashtbl.create 64 }

(* a production nobody exercised before is worth this many cells *)
let prod_bonus = 16

let energy t id = match Hashtbl.find_opt t.energy id with Some e -> e | None -> 0

let credit t id n =
  if Hashtbl.mem t.energy id then Hashtbl.replace t.energy id (energy t id + n)

let parent_of (e : Corpus.entry) =
  match e.Corpus.en_origin with
  | Corpus.Seeded _ -> None
  | Corpus.Spliced { sp_parent; _ } -> Some sp_parent
  | Corpus.Grown { gr_parent; _ } -> Some gr_parent

(** Account a just-admitted entry: count its productions that are new
    to the scheduler, set its energy, credit its parent with the fresh
    cells the offspring found. *)
let admit t (e : Corpus.entry) =
  let new_prods =
    List.fold_left
      (fun n p ->
        if Hashtbl.mem t.prods p then n
        else begin
          Hashtbl.replace t.prods p ();
          n + 1
        end)
      0 e.Corpus.en_productions
  in
  Hashtbl.replace t.energy e.Corpus.en_id
    (e.Corpus.en_fresh + (prod_bonus * new_prods) + 1);
  (match parent_of e with
  | Some p -> credit t p e.Corpus.en_fresh
  | None -> ());
  new_prods

(** Halve every energy — the per-round recency decay.  Energies floor
    at 1, so an old entry stays pickable when nothing else has energy
    (a cold corpus still breeds). *)
let decay t =
  Hashtbl.iter
    (fun id e -> Hashtbl.replace t.energy id (max 1 (e / 2)))
    (Hashtbl.copy t.energy)

(** The [n] highest-energy entries of [entries], deterministic: energy
    descending, then admission order descending (recent first), then
    id. *)
let pick t (entries : Corpus.entry list) ~n =
  let ranked =
    List.sort
      (fun (a : Corpus.entry) (b : Corpus.entry) ->
        let ea = energy t a.Corpus.en_id and eb = energy t b.Corpus.en_id in
        if ea <> eb then compare eb ea
        else if a.Corpus.en_ord <> b.Corpus.en_ord then
          compare b.Corpus.en_ord a.Corpus.en_ord
        else String.compare a.Corpus.en_id b.Corpus.en_id)
      entries
  in
  let rec take k = function
    | x :: rest when k > 0 -> x :: take (k - 1) rest
    | _ -> []
  in
  take n ranked

(** Reconstruct the scheduler from a loaded corpus: replay entries in
    insertion order, applying the decay at every round boundary — the
    same arithmetic the live loop performed, so a resumed soak picks
    exactly the parents an uninterrupted one would have. *)
let rebuild (entries : Corpus.entry list) : t =
  let t = create () in
  let round = ref 0 in
  List.iter
    (fun (e : Corpus.entry) ->
      while !round < e.Corpus.en_round do
        decay t;
        incr round
      done;
      ignore (admit t e))
    entries;
  t
