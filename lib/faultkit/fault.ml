(** Deterministic fault injection: one {!t} plan describes every fault a
    run should suffer, at every layer of the stack.

    The plan is plain immutable data — building one (or parsing one from
    an [--inject] spec) does nothing by itself.  Each layer consults the
    plan at its own injection point:

    - {!Mi_core.Instrument} deletes or weakens individual inserted
      checks ({!check_mutation}) — mutation testing of the safety
      guarantee;
    - {!Mi_vm.Inject} installs VM-level faults ({!vm_fault}): wild
      writes, fuel starvation, trap storms;
    - the instrumentation cache corrupts its own disk entries
      ({!cache_corruption}) to exercise the detection/quarantine path;
    - the experiment harness injects whole-job faults ({!job_fault}):
      worker crashes and hangs, matched by job key substring.

    Everything is deterministic: the same plan against the same inputs
    produces the same faults, so chaos runs are reproducible and
    parallel results stay byte-identical. *)

(* ------------------------------------------------------------------ *)
(* Plan                                                                *)
(* ------------------------------------------------------------------ *)

type check_action =
  | Delete  (** do not emit the check at all *)
  | Weaken  (** emit it with wide bounds — it can never report *)

type check_mutation = {
  cm_action : check_action;
  cm_ordinal : int;
      (** which check: the n-th (0-based) check placed in a function, in
          placement order of the unmutated run (ordinals are assigned
          before the mutation decision, so deleting check 2 does not
          renumber check 3); [-1] is the wildcard — every check in the
          matched function(s), the [del-check=*] spec *)
  cm_func : string option;  (** restrict to one function; [None] = any *)
}

type vm_fault =
  | Wild_write of { at_step : int; addr : int; value : int }
      (** store 8 bytes behind the instrumentation's back once the
          dynamic step counter reaches [at_step] *)
  | Fuel_cap of int  (** starve the fuel budget down to this many steps *)
  | Trap_at of int  (** raise a VM trap at the given step (a storm is
                        several of these) *)

type cache_corruption =
  | Truncate  (** cut every entry file in half *)
  | Bitflip  (** flip one byte in every entry's payload *)
  | Stale  (** move every entry under a digest it does not match *)

type job_fault =
  | Crash_job of string
      (** raise in the worker before the job runs; matched when the
          string occurs in ["<setup_key>/<bench>"] *)
  | Hang_job of string * float  (** busy-wait this many seconds first *)

type t = {
  seed : int;  (** seeds any sampling done on top of the plan *)
  checks : check_mutation list;
  vm : vm_fault list;
  cache : cache_corruption option;
  jobs : job_fault list;
}

let none = { seed = 0; checks = []; vm = []; cache = None; jobs = [] }

let is_none p =
  p.checks = [] && p.vm = [] && p.cache = None && p.jobs = []

(* ------------------------------------------------------------------ *)
(* Fault signals                                                       *)
(* ------------------------------------------------------------------ *)

exception Injected_crash of string
(** Raised by the harness worker for a matching {!Crash_job}. *)

exception Job_timeout of float
(** Raised (from a VM poll hook or a hang spin loop) when a job exceeds
    its wall-clock budget; carries the budget in seconds. *)

let () =
  Printexc.register_printer (function
    | Injected_crash what ->
        Some (Printf.sprintf "Injected_crash(%s)" what)
    | Job_timeout budget ->
        Some (Printf.sprintf "Job_timeout(%gs)" budget)
    | _ -> None)

(* ------------------------------------------------------------------ *)
(* Consultation                                                        *)
(* ------------------------------------------------------------------ *)

let check_mutation_for p ~func ~ordinal =
  List.find_map
    (fun cm ->
      if
        (cm.cm_ordinal = ordinal || cm.cm_ordinal = -1)
        && match cm.cm_func with None -> true | Some f -> f = func
      then Some cm.cm_action
      else None)
    p.checks

let job_fault_for p job_desc =
  let matches sub =
    sub <> ""
    &&
    let n = String.length sub and m = String.length job_desc in
    let rec at i = i + n <= m && (String.sub job_desc i n = sub || at (i + 1)) in
    at 0
  in
  List.find_opt
    (function
      | Crash_job s -> matches s
      | Hang_job (s, _) -> matches s)
    p.jobs

(* ------------------------------------------------------------------ *)
(* Rendering and the [--inject] spec language                          *)
(* ------------------------------------------------------------------ *)

let check_mutation_to_string cm =
  Printf.sprintf "%s=%s%s"
    (match cm.cm_action with Delete -> "del-check" | Weaken -> "weaken-check")
    (if cm.cm_ordinal = -1 then "*" else string_of_int cm.cm_ordinal)
    (match cm.cm_func with None -> "" | Some f -> "@" ^ f)

let corruption_name = function
  | Truncate -> "truncate"
  | Bitflip -> "bitflip"
  | Stale -> "stale"

let to_string p =
  let parts =
    (if p.seed <> 0 then [ Printf.sprintf "seed=%d" p.seed ] else [])
    @ List.map check_mutation_to_string p.checks
    @ List.map
        (function
          | Wild_write { at_step; addr; value } ->
              Printf.sprintf "wild-write=%d:%#x:%d" at_step addr value
          | Fuel_cap n -> Printf.sprintf "fuel=%d" n
          | Trap_at s -> Printf.sprintf "trap-at=%d" s)
        p.vm
    @ (match p.cache with
      | None -> []
      | Some c -> [ "corrupt-cache=" ^ corruption_name c ])
    @ List.map
        (function
          | Crash_job s -> "crash=" ^ s
          | Hang_job (s, d) -> Printf.sprintf "hang=%s:%g" s d)
        p.jobs
  in
  String.concat "," parts

(** The part of the plan that changes what the compile phase produces —
    folded into the instrumentation-cache key so mutated modules never
    alias unmutated ones.  Empty when no check is mutated. *)
let compile_sig p =
  match p.checks with
  | [] -> ""
  | cms -> String.concat "," (List.map check_mutation_to_string cms)

let parse spec : (t, string) result =
  let clauses =
    List.filter
      (fun s -> s <> "")
      (List.map String.trim (String.split_on_char ',' spec))
  in
  let int_of s what =
    match int_of_string_opt s with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "%s: expected an integer, got %S" what s)
  in
  let float_of s what =
    match float_of_string_opt s with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "%s: expected a number, got %S" what s)
  in
  let check_of action v =
    let ord, func =
      match String.index_opt v '@' with
      | Some i ->
          ( String.sub v 0 i,
            Some (String.sub v (i + 1) (String.length v - i - 1)) )
      | None -> (v, None)
    in
    let ord_res =
      if ord = "*" || ord = "" then Ok (-1) else int_of ord "check ordinal"
    in
    Result.map
      (fun o -> { cm_action = action; cm_ordinal = o; cm_func = func })
      ord_res
  in
  let rec go acc = function
    | [] -> Ok { acc with checks = List.rev acc.checks; vm = List.rev acc.vm;
                 jobs = List.rev acc.jobs }
    | clause :: rest -> (
        match String.index_opt clause '=' with
        | None when clause = "del-check" || clause = "weaken-check" ->
            (* bare form: mutate every check everywhere *)
            let action = if clause = "del-check" then Delete else Weaken in
            let cm = { cm_action = action; cm_ordinal = -1; cm_func = None } in
            go { acc with checks = cm :: acc.checks } rest
        | None -> Error (Printf.sprintf "bad clause %S (expected key=value)" clause)
        | Some i -> (
            let key = String.sub clause 0 i in
            let v = String.sub clause (i + 1) (String.length clause - i - 1) in
            match key with
            | "seed" ->
                Result.bind (int_of v "seed") (fun s ->
                    go { acc with seed = s } rest)
            | "del-check" ->
                Result.bind (check_of Delete v) (fun cm ->
                    go { acc with checks = cm :: acc.checks } rest)
            | "weaken-check" ->
                Result.bind (check_of Weaken v) (fun cm ->
                    go { acc with checks = cm :: acc.checks } rest)
            | "fuel" ->
                Result.bind (int_of v "fuel") (fun n ->
                    go { acc with vm = Fuel_cap n :: acc.vm } rest)
            | "trap-at" ->
                Result.bind (int_of v "trap-at") (fun s ->
                    go { acc with vm = Trap_at s :: acc.vm } rest)
            | "wild-write" -> (
                match String.split_on_char ':' v with
                | [ s; a; value ] ->
                    Result.bind (int_of s "wild-write step") (fun s ->
                        Result.bind (int_of a "wild-write addr") (fun a ->
                            Result.bind (int_of value "wild-write value")
                              (fun value ->
                                go
                                  { acc with
                                    vm =
                                      Wild_write
                                        { at_step = s; addr = a; value }
                                      :: acc.vm }
                                  rest)))
                | _ -> Error "wild-write: expected STEP:ADDR:VALUE")
            | "corrupt-cache" -> (
                match v with
                | "truncate" -> go { acc with cache = Some Truncate } rest
                | "bitflip" -> go { acc with cache = Some Bitflip } rest
                | "stale" -> go { acc with cache = Some Stale } rest
                | _ ->
                    Error
                      (Printf.sprintf
                         "corrupt-cache: expected truncate|bitflip|stale, got %S"
                         v))
            | "crash" -> go { acc with jobs = Crash_job v :: acc.jobs } rest
            | "hang" -> (
                match String.rindex_opt v ':' with
                | None -> Error "hang: expected SUBSTR:SECONDS"
                | Some i ->
                    let sub = String.sub v 0 i in
                    let secs = String.sub v (i + 1) (String.length v - i - 1) in
                    Result.bind (float_of secs "hang seconds") (fun d ->
                        go { acc with jobs = Hang_job (sub, d) :: acc.jobs }
                          rest))
            | _ -> Error (Printf.sprintf "unknown fault key %S" key)))
  in
  go none clauses
