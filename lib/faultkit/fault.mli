(** Deterministic fault-injection plans.

    A {!t} plan is plain data describing every fault a run should
    suffer; each layer of the stack consults it at its own injection
    point (check mutation in the instrumenter, VM faults in the
    interpreter, cache corruption in the instrumentation cache, job
    crashes/hangs in the harness).  Plans parse from the [--inject]
    command-line spec and render back canonically, and the same plan
    against the same inputs always produces the same faults. *)

type check_action =
  | Delete  (** do not emit the check at all *)
  | Weaken  (** emit it with wide bounds — it can never report *)

type check_mutation = {
  cm_action : check_action;
  cm_ordinal : int;
      (** the n-th (0-based) check placed in a function, in placement
          order of the unmutated run; [-1] is the wildcard — every
          check in the matched function(s) *)
  cm_func : string option;  (** restrict to one function; [None] = any *)
}

type vm_fault =
  | Wild_write of { at_step : int; addr : int; value : int }
      (** store 8 bytes behind the instrumentation's back at [at_step] *)
  | Fuel_cap of int  (** starve the fuel budget down to this many steps *)
  | Trap_at of int  (** raise a VM trap at the given step *)

type cache_corruption =
  | Truncate  (** cut every entry file in half *)
  | Bitflip  (** flip one byte in every entry's payload *)
  | Stale  (** move every entry under a digest it does not match *)

type job_fault =
  | Crash_job of string
      (** raise in the worker before the job runs; matched when the
          string occurs in ["<setup_key>/<bench>"] *)
  | Hang_job of string * float  (** busy-wait this many seconds first *)

type t = {
  seed : int;  (** seeds any sampling done on top of the plan *)
  checks : check_mutation list;
  vm : vm_fault list;
  cache : cache_corruption option;
  jobs : job_fault list;
}

val none : t
(** The empty plan: injects nothing. *)

val is_none : t -> bool

exception Injected_crash of string
(** Raised by the harness worker for a matching {!Crash_job}. *)

exception Job_timeout of float
(** Raised when a job exceeds its wall-clock budget (the payload is the
    budget in seconds, so the message is deterministic). *)

val check_mutation_for : t -> func:string -> ordinal:int -> check_action option
(** The action to apply to the check at [ordinal] in [func], if any. *)

val job_fault_for : t -> string -> job_fault option
(** First job fault whose substring matches the given job description. *)

val parse : string -> (t, string) result
(** Parse an [--inject] spec: comma-separated clauses [seed=N],
    [del-check=K[@FUNC]] (with [K] a 0-based ordinal or [*] for every
    check; the bare clause [del-check] is shorthand for [del-check=*]),
    [weaken-check=K[@FUNC]] (same forms),
    [wild-write=STEP:ADDR:VALUE], [fuel=N], [trap-at=STEP],
    [corrupt-cache=truncate|bitflip|stale], [crash=SUBSTR],
    [hang=SUBSTR:SECONDS]. *)

val to_string : t -> string
(** Canonical rendering; [parse (to_string p)] round-trips. *)

val compile_sig : t -> string
(** The part of the plan that changes what the compile phase produces —
    folded into the instrumentation-cache key so mutated modules never
    alias unmutated ones.  [""] when no check is mutated. *)
