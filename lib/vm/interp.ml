(** The MIR interpreter.

    Functions are precompiled into a dense executable form: SSA variables
    become slots in per-frame integer/float register banks, labels become
    block indices, phi nodes become parallel move lists on the incoming
    edges, and every operand is resolved (globals to their load addresses,
    immediates inline).  Execution charges cycles according to the
    {!Cost} model, which is what the runtime-overhead experiments
    measure.

    {2 The fast-path execution engine}

    Dynamic calls never hash a name on the hot path.  At load time every
    call site is resolved into a direct variant:

    - [XCallX] — the callee is a function of the image: the site holds a
      [ref] to its precompiled body (a ref, so mutually recursive
      functions resolve in one pass) and arguments copy straight from
      the caller's register banks into the callee's, with no boxing;
    - fused check superinstructions ([XSbCheck], [XLfCheck], [XFast*]) —
      the callee is an instrumentation-runtime intrinsic with a typed
      fast twin ({!State.fast_fn}): the call is executed by one direct
      closure invocation on unboxed integers;
    - [XCallBuiltin] — everything else: a per-site inline cache holds
      the resolved generic builtin (pre-warmed at load when the name is
      already registered, filled on first execution otherwise).

    Caches carry the {!State.t.builtin_gen} generation they were
    resolved at; registering a builtin after load bumps the generation
    and every affected site transparently re-resolves.  The contract
    throughout: resolution strategy is invisible to the cost model —
    modeled cycles, steps, counters and site profiles are identical to
    the generic lookup path, only wall-clock time changes. *)

open Mi_mir
module Rng = Mi_support.Rng

(* ------------------------------------------------------------------ *)
(* Executable form                                                     *)
(* ------------------------------------------------------------------ *)

type xv =
  | XI of int  (** immediate integer / resolved address *)
  | XF of float
  | XR of int  (** integer-bank register *)
  | XFR of int  (** float-bank register *)

type move = { mdst : int; mflt : bool; msrc : xv }

type builtin = State.t -> State.value array -> State.value option

(* Per-call-site inline cache for names resolved against the builtin
   table.  [bgen] is the State.builtin_gen the entry was captured at; a
   registration after load invalidates it and the site re-resolves. *)
type bcache = { mutable bgen : int; mutable bfn : builtin option }

(* Cache for a fused superinstruction's typed fast function, revalidated
   against builtin_gen exactly like [bcache]. *)
type fcache = { mutable fgen : int; mutable ffn : State.fast_fn option }

(* A fused runtime-intrinsic call.  [fargs] is site-normalized: when the
   intrinsic's trailing site-id argument was omitted by the emitter, an
   explicit [XI (-1)] stands in, which is exactly what the generic
   builtin would have defaulted to. *)
type fused = {
  fname : string;  (** intrinsic name, for revalidation and fallback *)
  fdst : (bool * int) option;
  fargs : xv array;
  fc : fcache;
}

type xinstr =
  | XBin of Instr.binop * Ty.t * int * xv * xv
  | XFBin of Instr.fbinop * int * xv * xv
  | XIcmp of Instr.icmp * Ty.t * int * xv * xv
  | XFcmp of Instr.fcmp * int * xv * xv
  | XCastII of Instr.cast * Ty.t * Ty.t * int * xv
  | XSiToFp of int * xv
  | XFpToSi of Ty.t * int * xv
  | XBitsIF of int * xv  (** bitcast i64 -> f64: dst is float reg *)
  | XBitsFI of int * xv  (** bitcast f64 -> i64: dst is int reg *)
  | XLoadI of Ty.t * int * xv  (** normalized integer load *)
  | XLoadF of int * xv
  | XStoreI of int * xv * xv  (** width, value, addr *)
  | XStoreF of xv * xv
  | XGep of int * xv * (int * xv) array
  | XSelI of int * xv * xv * xv
  | XSelF of int * xv * xv * xv
  | XCallX of {
      xdst : (bool * int) option;  (** (is_float, slot) *)
      target : xfunc ref;  (** filled during [load]; no name lookup *)
      xargs : xv array;
    }
  | XCallBuiltin of {
      xdst : (bool * int) option;
      xcallee : string;
      xargs : xv array;
      cache : bcache;  (** per-site inline cache *)
    }
  | XSbCheck of fused  (** __mi_sb_check (ptr, width, base, bound, site) *)
  | XLfCheck of fused  (** __mi_lf_check (ptr, width, base, site) *)
  | XFast0 of fused  (** nullary effectful intrinsic: ss_leave *)
  | XFast1 of fused  (** unary effectful intrinsic: ss_enter *)
  | XFast2 of fused  (** binary effectful intrinsic: ss_set_base/bound *)
  | XFast3 of fused
      (** ternary effectful intrinsic: trie_store, meta_copy,
          lf_invariant_check, tp_check *)
  | XFastR of fused
      (** unary int-returning intrinsic: trie loads, ss_get_*, lf_base,
          lf_alloca *)
  | XAlloca of int * int * int  (** dst, size, align *)
  | XMemcpy of xv * xv * xv
  | XMemset of xv * xv * xv

and xterm =
  | XRet of xv option
  | XBr of int
  | XCbr of xv * int * int
  | XUnreachable

and xblock = {
  xinstrs : xinstr array;
  xterm : xterm;
  (* parallel phi moves to perform when entering this block, indexed by
     the predecessor block we arrive from: [||] when the block has no
     phis, otherwise one (possibly empty) move array per block index *)
  xmoves : move array array;
}

and xfunc = {
  xname : string;
  xblocks : xblock array;
  n_iregs : int;
  n_fregs : int;
  param_slots : (bool * int) array;  (** (is_float, slot) per parameter *)
  ret_is_float : bool;
  mutable xcov : Mi_obs.Coverage.fn option;
      (** coverage counters for this function, filled by [load] when the
          state carries a registry; [None] costs one option check per
          executed block.  Recording is block/edge-granular and happens
          before the block body runs, so it is identical under fast and
          generic dispatch. *)
}

type image = {
  xfuncs : (string, xfunc ref) Hashtbl.t;
  global_addr : (string, int) Hashtbl.t;
  fn_addr : (string, int) Hashtbl.t;  (** fake code addresses *)
  merged : Irmod.t;
}

(* ------------------------------------------------------------------ *)
(* Precompilation                                                      *)
(* ------------------------------------------------------------------ *)

exception Link_error of string

(* Placeholder body the per-function refs point at until [load]'s second
   pass fills them; never executed. *)
let dummy_xfunc =
  {
    xname = "<unresolved>";
    xblocks = [||];
    n_iregs = 0;
    n_fregs = 0;
    param_slots = [||];
    ret_is_float = false;
    xcov = None;
  }

(* Decide whether a call to [callee] can fuse into a superinstruction:
   the state must already hold a typed fast twin, and the site's static
   shape (arity, result slot, int-typed operands) must match the twin
   exactly — anything else falls back to the generic builtin call, whose
   behaviour on malformed programs is the reference.  The three check
   intrinsics may arrive with their trailing site-id argument omitted;
   it normalizes to [XI (-1)], the generic builtins' default. *)
let fuse (st : State.t) callee (xdst : (bool * int) option)
    (xargs : xv array) : xinstr option =
  let ints_only =
    Array.for_all (function XI _ | XR _ -> true | XF _ | XFR _ -> false) xargs
  in
  (* [State.fast_dispatch] off: force every runtime call through the
     generic builtin path, so fast twins are differentially testable *)
  if not (st.State.fast_dispatch && ints_only) then None
  else
    match State.find_fast_builtin st callee with
    | None -> None
    | Some ff -> (
        let n = Array.length xargs in
        let with_site want =
          if n = want then Some xargs
          else if n = want - 1 then Some (Array.append xargs [| XI (-1) |])
          else None
        in
        let mk fargs =
          {
            fname = callee;
            fdst = xdst;
            fargs;
            fc = { fgen = st.State.builtin_gen; ffn = Some ff };
          }
        in
        match (ff, xdst) with
        | State.F5 _, None when callee = Intrinsics.sb_check ->
            Option.map (fun a -> XSbCheck (mk a)) (with_site 5)
        | State.F4 _, None when callee = Intrinsics.lf_check ->
            Option.map (fun a -> XLfCheck (mk a)) (with_site 4)
        | State.F3 _, None when callee = Intrinsics.lf_invariant_check ->
            Option.map (fun a -> XFast3 (mk a)) (with_site 3)
        | State.F3 _, None when callee = Intrinsics.tp_check ->
            Option.map (fun a -> XFast3 (mk a)) (with_site 3)
        | State.F0 _, None when n = 0 -> Some (XFast0 (mk xargs))
        | State.F1 _, None when n = 1 -> Some (XFast1 (mk xargs))
        | State.F2 _, None when n = 2 -> Some (XFast2 (mk xargs))
        | State.F3 _, None when n = 3 -> Some (XFast3 (mk xargs))
        | State.FR1 _, (None | Some (false, _)) when n = 1 ->
            Some (XFastR (mk xargs))
        | _ -> None)

let precompile_func (st : State.t) ~xfuncs ~global_addr ~fn_addr (f : Func.t)
    : xfunc =
  let blocks = Array.of_list f.blocks in
  let n = Array.length blocks in
  let block_idx = Hashtbl.create n in
  Array.iteri
    (fun i (b : Block.t) -> Hashtbl.replace block_idx b.label i)
    blocks;
  let bidx l =
    match Hashtbl.find_opt block_idx l with
    | Some i -> i
    | None -> raise (Link_error (f.fname ^ ": unknown label " ^ l))
  in
  (* slot assignment *)
  let slot_of : (bool * int) Value.VTbl.t = Value.VTbl.create 64 in
  let n_i = ref 0 and n_f = ref 0 in
  let assign (v : Value.var) =
    if not (Value.VTbl.mem slot_of v) then
      if Ty.is_float v.vty then begin
        Value.VTbl.add slot_of v (true, !n_f);
        incr n_f
      end
      else begin
        Value.VTbl.add slot_of v (false, !n_i);
        incr n_i
      end
  in
  List.iter assign f.params;
  Array.iter
    (fun (b : Block.t) ->
      List.iter (fun (p : Instr.phi) -> assign p.pdst) b.phis;
      List.iter
        (fun (i : Instr.t) -> Option.iter assign i.dst)
        b.body)
    blocks;
  let slot v =
    match Value.VTbl.find_opt slot_of v with
    | Some s -> s
    | None ->
        raise
          (Link_error
             (Printf.sprintf "%s: unassigned variable %s" f.fname
                (Value.var_to_string v)))
  in
  let xval (v : Value.t) : xv =
    match v with
    | Var x ->
        let is_f, s = slot x in
        if is_f then XFR s else XR s
    | Int (_, k) -> XI k
    | Flt fl -> XF fl
    | Glob g -> (
        match Hashtbl.find_opt global_addr g with
        | Some a -> XI a
        | None -> raise (Link_error ("unresolved global @" ^ g)))
    | Fn fn -> (
        match Hashtbl.find_opt fn_addr fn with
        | Some a -> XI a
        | None -> raise (Link_error ("unresolved function &" ^ fn)))
  in
  (* discarded results share one scratch slot per bank: a fresh slot per
     dead destination would bloat n_iregs/n_fregs and with it the bank
     allocation of every call of this function *)
  let iscratch = ref (-1) and fscratch = ref (-1) in
  let int_slot ~what (d : Value.var option) =
    match d with
    | Some v ->
        let is_f, s = slot v in
        if is_f then raise (Link_error (what ^ ": float dst"));
        s
    | None ->
        if !iscratch < 0 then begin
          iscratch := !n_i;
          incr n_i
        end;
        !iscratch
  in
  let flt_slot ~what (d : Value.var option) =
    match d with
    | Some v ->
        let is_f, s = slot v in
        if not is_f then raise (Link_error (what ^ ": int dst"));
        s
    | None ->
        if !fscratch < 0 then begin
          fscratch := !n_f;
          incr n_f
        end;
        !fscratch
  in
  let xinstr (i : Instr.t) : xinstr =
    match i.op with
    | Bin (op, ty, a, b) ->
        XBin (op, ty, int_slot ~what:"bin" i.dst, xval a, xval b)
    | FBin (op, a, b) -> XFBin (op, flt_slot ~what:"fbin" i.dst, xval a, xval b)
    | Icmp (op, ty, a, b) ->
        XIcmp (op, ty, int_slot ~what:"icmp" i.dst, xval a, xval b)
    | Fcmp (op, a, b) -> XFcmp (op, int_slot ~what:"fcmp" i.dst, xval a, xval b)
    | Cast (c, from_ty, v, to_ty) -> (
        match c with
        | SiToFp -> XSiToFp (flt_slot ~what:"sitofp" i.dst, xval v)
        | FpToSi -> XFpToSi (to_ty, int_slot ~what:"fptosi" i.dst, xval v)
        | Bitcast when Ty.is_float to_ty && not (Ty.is_float from_ty) ->
            XBitsIF (flt_slot ~what:"bitcast" i.dst, xval v)
        | Bitcast when Ty.is_float from_ty && not (Ty.is_float to_ty) ->
            XBitsFI (int_slot ~what:"bitcast" i.dst, xval v)
        | _ ->
            XCastII (c, from_ty, to_ty, int_slot ~what:"cast" i.dst, xval v))
    | Load (ty, addr) ->
        if Ty.is_float ty then XLoadF (flt_slot ~what:"load" i.dst, xval addr)
        else XLoadI (ty, int_slot ~what:"load" i.dst, xval addr)
    | Store (ty, v, addr) ->
        if Ty.is_float ty then XStoreF (xval v, xval addr)
        else XStoreI (Ty.size_of ty, xval v, xval addr)
    | Gep (base, idxs) ->
        XGep
          ( int_slot ~what:"gep" i.dst,
            xval base,
            Array.of_list
              (List.map (fun gi -> (gi.Instr.stride, xval gi.Instr.idx)) idxs)
          )
    | Select (ty, c, a, b) ->
        if Ty.is_float ty then
          XSelF (flt_slot ~what:"select" i.dst, xval c, xval a, xval b)
        else XSelI (int_slot ~what:"select" i.dst, xval c, xval a, xval b)
    | Call (callee, args) -> (
        let xdst =
          match i.dst with
          | None -> None
          | Some v -> Some (slot v)
        in
        let xargs = Array.of_list (List.map xval args) in
        (* resolve now: image function > fused intrinsic > builtin cache;
           names unknown at load keep a cold cache and resolve at run
           time (or trap, with the same message the lookup path gave) *)
        match Hashtbl.find_opt xfuncs callee with
        | Some r -> XCallX { xdst; target = r; xargs }
        | None -> (
            match fuse st callee xdst xargs with
            | Some xi -> xi
            | None ->
                XCallBuiltin
                  {
                    xdst;
                    xcallee = callee;
                    xargs;
                    cache =
                      {
                        bgen = st.State.builtin_gen;
                        bfn = State.find_builtin st callee;
                      };
                  }))
    | Alloca { size; align } ->
        XAlloca (int_slot ~what:"alloca" i.dst, size, align)
    | Memcpy (d, s, n') -> XMemcpy (xval d, xval s, xval n')
    | Memset (d, b, n') -> XMemset (xval d, xval b, xval n')
  in
  let xblocks =
    Array.map
      (fun (b : Block.t) ->
        let xinstrs = Array.of_list (List.map xinstr b.body) in
        let xterm =
          match b.term with
          | Instr.Ret v -> XRet (Option.map xval v)
          | Instr.Br l -> XBr (bidx l)
          | Instr.Cbr (c, l1, l2) -> XCbr (xval c, bidx l1, bidx l2)
          | Instr.Unreachable -> XUnreachable
        in
        (xinstrs, xterm, b))
      blocks
  in
  (* phi moves: for each block with phis, one parallel move list per
     predecessor block index — entering the block is a single array read
     away from its edge's moves *)
  let final_blocks =
    Array.map
      (fun (xinstrs, xterm, (b : Block.t)) ->
        let preds = Hashtbl.create 4 in
        List.iter
          (fun (p : Instr.phi) ->
            let is_f, dslot = slot p.pdst in
            List.iter
              (fun (lbl, v) ->
                let pi = bidx lbl in
                let mv = { mdst = dslot; mflt = is_f; msrc = xval v } in
                match Hashtbl.find_opt preds pi with
                | Some l -> l := mv :: !l
                | None -> Hashtbl.add preds pi (ref [ mv ]))
              p.incoming)
          b.phis;
        let xmoves =
          if Hashtbl.length preds = 0 then [||]
          else begin
            let a = Array.make n [||] in
            Hashtbl.iter
              (fun pi l -> a.(pi) <- Array.of_list (List.rev !l))
              preds;
            a
          end
        in
        { xinstrs; xterm; xmoves })
      xblocks
  in
  {
    xname = f.fname;
    xblocks = final_blocks;
    n_iregs = !n_i;
    n_fregs = !n_f;
    param_slots =
      Array.of_list
        (List.map
           (fun p ->
             let is_f, s = slot p in
             (is_f, s))
           f.params);
    ret_is_float =
      (match f.ret_ty with Some ty -> Ty.is_float ty | None -> false);
    xcov = None;
  }

(* ------------------------------------------------------------------ *)
(* Linking and loading                                                 *)
(* ------------------------------------------------------------------ *)

(** Merge separately-compiled modules: resolve extern declarations against
    definitions from sibling modules, keep unresolved externs for the
    builtin table.  This models the paper's link step (Fig. 8). *)
let link (modules : Irmod.t list) : Irmod.t =
  let out = Irmod.mk "linked" in
  let gdefs = Hashtbl.create 32 and gdecls = Hashtbl.create 32 in
  let fdefs = Hashtbl.create 32 and fdecls = Hashtbl.create 32 in
  List.iter
    (fun (m : Irmod.t) ->
      List.iter
        (fun (g : Irmod.global) ->
          if g.gextern then begin
            if not (Hashtbl.mem gdecls g.gname) then
              Hashtbl.add gdecls g.gname g
          end
          else if Hashtbl.mem gdefs g.gname then
            raise (Link_error ("duplicate definition of global " ^ g.gname))
          else Hashtbl.add gdefs g.gname g)
        m.globals;
      List.iter
        (fun (f : Func.t) ->
          if f.is_external then begin
            if not (Hashtbl.mem fdecls f.fname) then
              Hashtbl.add fdecls f.fname f
          end
          else if Hashtbl.mem fdefs f.fname then
            raise (Link_error ("duplicate definition of function " ^ f.fname))
          else Hashtbl.add fdefs f.fname f)
        m.funcs)
    modules;
  (* definitions win over declarations; preserve first-module order *)
  let seen_g = Hashtbl.create 32 and seen_f = Hashtbl.create 32 in
  List.iter
    (fun (m : Irmod.t) ->
      List.iter
        (fun (g : Irmod.global) ->
          if not (Hashtbl.mem seen_g g.gname) then begin
            Hashtbl.add seen_g g.gname ();
            match Hashtbl.find_opt gdefs g.gname with
            | Some d -> Irmod.add_global out d
            | None -> Irmod.add_global out g
          end)
        m.globals;
      List.iter
        (fun (f : Func.t) ->
          if not (Hashtbl.mem seen_f f.fname) then begin
            Hashtbl.add seen_f f.fname ();
            match Hashtbl.find_opt fdefs f.fname with
            | Some d -> Irmod.add_func out d
            | None -> Irmod.add_func out f
          end)
        m.funcs)
    modules;
  out

(** Lay out globals and write their initializers.  [alloc_global] decides
    placement per global: return [Some addr] to place it yourself (the
    Low-Fat runtime mirrors instrumented globals into low-fat regions,
    [Duck & Yap 2018]), or [None] for the default (non-low-fat) globals
    segment.  Extern globals with no definition anywhere model
    external-library globals: they always live in the globals segment. *)
let load
    ?(alloc_global :
       (State.t -> name:string -> size:int -> align:int -> int option) option)
    (st : State.t) (modules : Irmod.t list) : image =
  let merged = link modules in
  let global_addr = Hashtbl.create 32 in
  let gbase = ref Layout.globals_base in
  let seg_alloc ~size ~align =
    let a = Mi_support.Util.align_up !gbase (max align 8) in
    gbase := a + max size 1 + 32;
    (* 32-byte gap between globals so raw overflows between distinct
       globals stay observable *)
    a
  in
  List.iter
    (fun (g : Irmod.global) ->
      let size =
        if g.gextern && (g.gsize = 0 || not g.gsize_known) then 4096
        else max g.gsize 1
      in
      let addr =
        if g.gextern then seg_alloc ~size ~align:g.galign
        else
          match alloc_global with
          | Some f -> (
              match f st ~name:g.gname ~size ~align:g.galign with
              | Some a -> a
              | None -> seg_alloc ~size ~align:g.galign)
          | None -> seg_alloc ~size ~align:g.galign
      in
      Hashtbl.replace global_addr g.gname addr)
    merged.globals;
  (* write initializers; GPtr fields need all addresses assigned first *)
  List.iter
    (fun (g : Irmod.global) ->
      if not g.gextern then begin
        let addr = Hashtbl.find global_addr g.gname in
        let off = ref 0 in
        List.iter
          (fun (fld : Irmod.gfield) ->
            (match fld with
            | GBytes s -> Memory.store_bytes st.State.mem (addr + !off) s
            | GZero _ -> () (* memory is zero-initialized *)
            | GPtr name -> (
                match Hashtbl.find_opt global_addr name with
                | Some a -> Memory.store st.State.mem (addr + !off) 8 a
                | None ->
                    raise
                      (Link_error
                         (Printf.sprintf
                            "global %s references unknown global %s" g.gname
                            name))));
            off := !off + Irmod.field_size fld)
          g.gfields
      end)
    merged.globals;
  (* fake code addresses inside the null guard so dereferencing traps *)
  let fn_addr = Hashtbl.create 32 in
  List.iteri
    (fun i (f : Func.t) -> Hashtbl.replace fn_addr f.fname (0x1000 + (i * 16)))
    merged.funcs;
  (* two passes: create one ref per defined function first, so direct
     call sites — including mutually recursive ones — resolve in the
     single precompilation pass that then fills the refs *)
  let xfuncs = Hashtbl.create 32 in
  List.iter
    (fun (f : Func.t) ->
      if not f.is_external then
        Hashtbl.replace xfuncs f.fname (ref dummy_xfunc))
    merged.funcs;
  List.iter
    (fun (f : Func.t) ->
      if not f.is_external then
        Hashtbl.find xfuncs f.fname
        := precompile_func st ~xfuncs ~global_addr ~fn_addr f)
    merged.funcs;
  (* register coverage geometry when the state carries a registry: the
     successor lists of the precompiled blocks are the stable block/edge
     id space (a conditional branch with both arms on one target is a
     single edge) *)
  (match st.State.coverage with
  | None -> ()
  | Some cov ->
      Hashtbl.iter
        (fun _ r ->
          let xf = !r in
          let succ =
            Array.map
              (fun (b : xblock) ->
                match b.xterm with
                | XRet _ | XUnreachable -> [||]
                | XBr t -> [| t |]
                | XCbr (_, t1, t2) -> if t1 = t2 then [| t1 |] else [| t1; t2 |])
              xf.xblocks
          in
          xf.xcov <-
            Some (Mi_obs.Coverage.register_fn cov ~name:xf.xname ~succ))
        xfuncs);
  { xfuncs; global_addr; fn_addr; merged }

(** [(n_iregs, n_fregs)] of a loaded function — the register-bank sizes
    every call of it allocates. *)
let func_regs (img : image) name =
  Option.map
    (fun r -> ((!r).n_iregs, (!r).n_fregs))
    (Hashtbl.find_opt img.xfuncs name)

(* ------------------------------------------------------------------ *)
(* Execution                                                           *)
(* ------------------------------------------------------------------ *)

type outcome =
  | Exited of int
  | Safety_violation of { checker : string; reason : string }
  | Trapped of string
  | Exhausted of int
      (** ran out of fuel (payload: the budget) — resource exhaustion,
          not a program error *)

type result = {
  outcome : outcome;
  cycles : int;
  steps : int;
  output : string;
  counters : (string * int) list;
  mem_pages : int;
}

(* One dynamic step: fuel accounting plus the poll-hook check that
   fault injectors and wall-clock deadlines piggyback on.  The single
   site for both the instruction loop and the terminator. *)
let[@inline] tick (st : State.t) =
  st.steps <- st.steps + 1;
  if st.steps > st.fuel then raise (State.Fuel_exhausted st.fuel);
  if st.steps >= st.next_poll_step then State.run_polls st

let ival iregs = function
  | XI k -> k
  | XR r -> iregs.(r)
  | XF _ | XFR _ -> raise (State.Trap "float operand in integer context")

let fval fregs = function
  | XF f -> f
  | XFR r -> fregs.(r)
  | XI _ | XR _ -> raise (State.Trap "int operand in float context")

let[@inline] box_arg iregs fregs = function
  | XI k -> State.I k
  | XR r -> State.I iregs.(r)
  | XF f -> State.F f
  | XFR r -> State.F fregs.(r)

(* Write a call result into the caller's banks; the error messages here
   are part of the engine's compatibility surface. *)
let set_call_result name (xdst : (bool * int) option) iregs fregs
    (res : State.value option) =
  match (xdst, res) with
  | None, _ -> ()
  | Some (is_f, s), Some v ->
      if is_f then fregs.(s) <- State.as_float v
      else iregs.(s) <- State.as_int v
  | Some _, None ->
      raise (State.Trap ("void result used from call to " ^ name))

(* Revalidate a fused site's fast function against the current builtin
   generation (one int compare on the hot path). *)
let[@inline] fused_fn (st : State.t) (f : fused) =
  if f.fc.fgen <> st.builtin_gen then begin
    f.fc.ffn <- State.find_fast_builtin st f.fname;
    f.fc.fgen <- st.builtin_gen
  end;
  f.fc.ffn

(* Cold path of a fused site: the fast twin disappeared or changed
   arity after load (a builtin was re-registered).  Execute through the
   generic builtin exactly like an [XCallBuiltin] site would. *)
let fused_slow (st : State.t) (f : fused) iregs fregs =
  let vargs = Array.map (box_arg iregs fregs) f.fargs in
  match State.find_builtin st f.fname with
  | Some fn -> set_call_result f.fname f.fdst iregs fregs (fn st vargs)
  | None -> raise (State.Trap ("unresolved external: " ^ f.fname))

(* The frame loop.  [iregs]/[fregs] are the callee's banks, already
   loaded with the arguments; the caller-facing prologues below differ
   only in where the arguments come from. *)
let rec exec_frame (st : State.t) (xf : xfunc) (iregs : int array)
    (fregs : float array) : State.value option =
  let c = st.cost in
  let saved_sp = st.stack_ptr in
  st.frame_enter_hook st;
  let finish (r : State.value option) =
    st.frame_exit_hook st;
    st.stack_ptr <- saved_sp;
    r
  in
  (* temp buffers for parallel phi moves *)
  let tmp_i = Array.make 16 0 and tmp_f = Array.make 16 0.0 in
  let result = ref None in
  (* coverage counter arrays, hoisted so the per-block recording below
     is a handful of array operations with no call; block ids come from
     the precompiled CFG the geometry was registered from, so unsafe
     indexing is in-bounds by construction.  [cov_on] costs the same
     single branch per block as the previous option match. *)
  let cov_blocks, cov_succ, cov_ebase, cov_edges =
    match xf.xcov with
    | None -> ([||], [||], [||], [||])
    | Some cov -> Mi_obs.Coverage.counters cov
  in
  let cov_on = Array.length cov_blocks > 0 in
  (try
     let cur = ref 0 and prev = ref (-1) and running = ref true in
     while !running do
       let b = xf.xblocks.(!cur) in
       (* coverage side band: block entry + traversed edge.  Never
          touches cycles/steps/counters, so enabling it cannot perturb
          any differential oracle. *)
       if cov_on then begin
         let cu = !cur in
         Array.unsafe_set cov_blocks cu (Array.unsafe_get cov_blocks cu + 1);
         let p = !prev in
         if p >= 0 then begin
           let succ = Array.unsafe_get cov_succ p in
           let base = Array.unsafe_get cov_ebase p in
           let n = Array.length succ in
           let rec edge k =
             if k < n then
               if Array.unsafe_get succ k = cu then
                 Array.unsafe_set cov_edges (base + k)
                   (Array.unsafe_get cov_edges (base + k) + 1)
               else edge (k + 1)
           in
           edge 0
         end
       end;
       (* phi moves for the edge prev -> cur, parallel semantics *)
       if !prev >= 0 && Array.length b.xmoves > 0 then begin
         let mv = b.xmoves.(!prev) in
         let n = Array.length mv in
         if n > 0 then begin
           let tmp_i = if n <= 16 then tmp_i else Array.make n 0 in
           let tmp_f = if n <= 16 then tmp_f else Array.make n 0.0 in
           for k = 0 to n - 1 do
             if mv.(k).mflt then tmp_f.(k) <- fval fregs mv.(k).msrc
             else tmp_i.(k) <- ival iregs mv.(k).msrc
           done;
           for k = 0 to n - 1 do
             if mv.(k).mflt then fregs.(mv.(k).mdst) <- tmp_f.(k)
             else iregs.(mv.(k).mdst) <- tmp_i.(k);
             st.cycles <- st.cycles + c.alu
           done
         end
       end;
       (* body *)
       let instrs = b.xinstrs in
       for k = 0 to Array.length instrs - 1 do
         tick st;
         match instrs.(k) with
         | XBin (op, ty, d, a, bb) ->
             st.cycles <-
               st.cycles
               + (match op with
                 | Mul -> c.mul
                 | SDiv | UDiv | SRem | URem -> c.div
                 | _ -> c.alu);
             let x = ival iregs a and y = ival iregs bb in
             iregs.(d) <-
               (try Eval.binop op ty x y
                with Eval.Div_by_zero ->
                  raise (State.Trap "integer division by zero"))
         | XFBin (op, d, a, bb) ->
             st.cycles <- st.cycles + c.fpu;
             fregs.(d) <- Eval.fbinop op (fval fregs a) (fval fregs bb)
         | XIcmp (op, ty, d, a, bb) ->
             st.cycles <- st.cycles + c.alu;
             iregs.(d) <- Eval.icmp op ty (ival iregs a) (ival iregs bb)
         | XFcmp (op, d, a, bb) ->
             st.cycles <- st.cycles + c.fpu;
             iregs.(d) <- Eval.fcmp op (fval fregs a) (fval fregs bb)
         | XCastII (cst, from_ty, to_ty, d, v) ->
             st.cycles <- st.cycles + c.alu;
             iregs.(d) <- Eval.cast_int cst from_ty to_ty (ival iregs v)
         | XSiToFp (d, v) ->
             st.cycles <- st.cycles + c.fpu;
             fregs.(d) <- float_of_int (ival iregs v)
         | XFpToSi (to_ty, d, v) ->
             st.cycles <- st.cycles + c.fpu;
             let f = fval fregs v in
             if Float.is_nan f then iregs.(d) <- 0
             else iregs.(d) <- Eval.normalize to_ty (int_of_float f)
         | XBitsIF (d, v) ->
             (* inverse of XBitsFI below: the integer holds the pattern's
                top 63 bits, shifted back up; bit 0 reads as zero *)
             st.cycles <- st.cycles + c.alu;
             fregs.(d) <-
               Int64.float_of_bits
                 (Int64.shift_left (Int64.of_int (ival iregs v)) 1)
         | XBitsFI (d, v) ->
             (* the IEEE pattern has 64 bits, the int substrate 63: keep
                the top 63 (sign, exponent, mantissa bits 51..1) so the
                round-trip preserves sign and magnitude to 1 ulp, and
                sign tests on the integer pattern work.  Truncating via
                Int64.to_int would instead clip the sign bit (so
                bitcast(bitcast(-1.0)) read +1.0) — same full-width
                discipline as Memory.load_i64_full. *)
             st.cycles <- st.cycles + c.alu;
             iregs.(d) <-
               Int64.to_int
                 (Int64.shift_right_logical
                    (Int64.bits_of_float (fval fregs v))
                    1)
         | XLoadI (ty, d, a) ->
             st.cycles <- st.cycles + c.load;
             let addr = ival iregs a in
             iregs.(d) <-
               Eval.normalize ty
                 (Memory.load st.mem addr (Ty.size_of ty))
         | XLoadF (d, a) ->
             st.cycles <- st.cycles + c.load;
             fregs.(d) <- Memory.load_f64 st.mem (ival iregs a)
         | XStoreI (w, v, a) ->
             st.cycles <- st.cycles + c.store;
             Memory.store st.mem (ival iregs a) w (ival iregs v)
         | XStoreF (v, a) ->
             st.cycles <- st.cycles + c.store;
             Memory.store_f64 st.mem (ival iregs a) (fval fregs v)
         | XGep (d, base, idxs) ->
             let acc = ref (ival iregs base) in
             for j = 0 to Array.length idxs - 1 do
               let stride, iv = idxs.(j) in
               acc := !acc + (stride * ival iregs iv);
               st.cycles <- st.cycles + c.gep_term
             done;
             iregs.(d) <- !acc
         | XSelI (d, cc, a, bb) ->
             st.cycles <- st.cycles + c.select;
             iregs.(d) <-
               (if ival iregs cc <> 0 then ival iregs a else ival iregs bb)
         | XSelF (d, cc, a, bb) ->
             st.cycles <- st.cycles + c.select;
             fregs.(d) <-
               (if ival iregs cc <> 0 then fval fregs a else fval fregs bb)
         | XCallX { xdst; target; xargs } ->
             st.cycles <- st.cycles + c.call_overhead;
             let callee = !target in
             let res = exec_call_regs st callee xargs iregs fregs in
             set_call_result callee.xname xdst iregs fregs res
         | XCallBuiltin { xdst; xcallee; xargs; cache } -> (
             let fn =
               if cache.bgen = st.builtin_gen then cache.bfn
               else begin
                 let f = State.find_builtin st xcallee in
                 cache.bfn <- f;
                 cache.bgen <- st.builtin_gen;
                 f
               end
             in
             match fn with
             | Some fn ->
                 let vargs = Array.map (box_arg iregs fregs) xargs in
                 set_call_result xcallee xdst iregs fregs (fn st vargs)
             | None ->
                 raise (State.Trap ("unresolved external: " ^ xcallee)))
         | XSbCheck f -> (
             match fused_fn st f with
             | Some (State.F5 fn) ->
                 let a = f.fargs in
                 fn st (ival iregs a.(0)) (ival iregs a.(1))
                   (ival iregs a.(2)) (ival iregs a.(3)) (ival iregs a.(4))
             | _ -> fused_slow st f iregs fregs)
         | XLfCheck f -> (
             match fused_fn st f with
             | Some (State.F4 fn) ->
                 let a = f.fargs in
                 fn st (ival iregs a.(0)) (ival iregs a.(1))
                   (ival iregs a.(2)) (ival iregs a.(3))
             | _ -> fused_slow st f iregs fregs)
         | XFast0 f -> (
             match fused_fn st f with
             | Some (State.F0 fn) -> fn st
             | _ -> fused_slow st f iregs fregs)
         | XFast1 f -> (
             match fused_fn st f with
             | Some (State.F1 fn) -> fn st (ival iregs f.fargs.(0))
             | _ -> fused_slow st f iregs fregs)
         | XFast2 f -> (
             match fused_fn st f with
             | Some (State.F2 fn) ->
                 fn st (ival iregs f.fargs.(0)) (ival iregs f.fargs.(1))
             | _ -> fused_slow st f iregs fregs)
         | XFast3 f -> (
             match fused_fn st f with
             | Some (State.F3 fn) ->
                 let a = f.fargs in
                 fn st (ival iregs a.(0)) (ival iregs a.(1))
                   (ival iregs a.(2))
             | _ -> fused_slow st f iregs fregs)
         | XFastR f -> (
             match fused_fn st f with
             | Some (State.FR1 fn) -> (
                 let r = fn st (ival iregs f.fargs.(0)) in
                 match f.fdst with
                 | None -> ()
                 | Some (_, s) -> iregs.(s) <- r)
             | _ -> fused_slow st f iregs fregs)
         | XAlloca (d, size, align) ->
             st.cycles <- st.cycles + c.alu;
             let sp =
               (st.stack_ptr - size) land lnot (max align 8 - 1)
             in
             if sp < Layout.stack_limit then
               raise (State.Trap "stack overflow");
             st.stack_ptr <- sp;
             iregs.(d) <- sp
         | XMemcpy (dv, sv, nv) ->
             let n = ival iregs nv in
             st.cycles <- st.cycles + Cost.memop_cost c n;
             Memory.copy st.mem ~dst:(ival iregs dv) ~src:(ival iregs sv) n
         | XMemset (dv, bv, nv) ->
             let n = ival iregs nv in
             st.cycles <- st.cycles + Cost.memop_cost c n;
             Memory.fill st.mem ~dst:(ival iregs dv)
               ~byte:(ival iregs bv land 0xff)
               n
       done;
       (* terminator *)
       tick st;
       (match b.xterm with
       | XRet v ->
           result :=
             (match v with
             | None -> None
             | Some xv ->
                 Some
                   (if xf.ret_is_float then State.F (fval fregs xv)
                    else State.I (ival iregs xv)));
           running := false
       | XBr t ->
           st.cycles <- st.cycles + c.branch;
           prev := !cur;
           cur := t
       | XCbr (cc, t1, t2) ->
           st.cycles <- st.cycles + c.branch;
           prev := !cur;
           cur := if ival iregs cc <> 0 then t1 else t2
       | XUnreachable ->
           raise (State.Trap ("reached unreachable in " ^ xf.xname)))
     done
   with e ->
     ignore (finish None);
     raise e);
  finish !result

(* Boxed-argument entry: [run] below and embedders call functions this
   way; arguments arrive as {!State.value}s. *)
and exec_call (st : State.t) (xf : xfunc) (args : State.value array) :
    State.value option =
  if Array.length args <> Array.length xf.param_slots then
    raise
      (State.Trap
         (Printf.sprintf "call to %s with %d args, expected %d" xf.xname
            (Array.length args)
            (Array.length xf.param_slots)));
  let iregs = Array.make (max xf.n_iregs 1) 0 in
  let fregs = Array.make (max xf.n_fregs 1) 0.0 in
  Array.iteri
    (fun i (is_f, s) ->
      match args.(i) with
      | State.I v ->
          if is_f then raise (State.Trap "int arg for float param")
          else iregs.(s) <- v
      | State.F v ->
          if is_f then fregs.(s) <- v
          else raise (State.Trap "float arg for int param"))
    xf.param_slots;
  exec_frame st xf iregs fregs

(* Direct entry for [XCallX]: arguments copy from the caller's banks
   into the callee's without materializing a boxed value array. *)
and exec_call_regs (st : State.t) (xf : xfunc) (xargs : xv array)
    (ciregs : int array) (cfregs : float array) : State.value option =
  if Array.length xargs <> Array.length xf.param_slots then
    raise
      (State.Trap
         (Printf.sprintf "call to %s with %d args, expected %d" xf.xname
            (Array.length xargs)
            (Array.length xf.param_slots)));
  let iregs = Array.make (max xf.n_iregs 1) 0 in
  let fregs = Array.make (max xf.n_fregs 1) 0.0 in
  Array.iteri
    (fun i (is_f, s) ->
      match xargs.(i) with
      | XI k ->
          if is_f then raise (State.Trap "int arg for float param")
          else iregs.(s) <- k
      | XR r ->
          if is_f then raise (State.Trap "int arg for float param")
          else iregs.(s) <- ciregs.(r)
      | XF f ->
          if is_f then fregs.(s) <- f
          else raise (State.Trap "float arg for int param")
      | XFR r ->
          if is_f then fregs.(s) <- cfregs.(r)
          else raise (State.Trap "float arg for int param"))
    xf.param_slots;
  exec_frame st xf iregs fregs

let merged_module (img : image) = img.merged

(** Run function [entry] (default ["main"]).  If the image defines
    [__mi_global_init], it runs first (SoftBound metadata for pointers in
    global initializers — the constructor the instrumentation emits). *)
let run ?(entry = "main") (st : State.t) (img : image) : result =
  let outcome =
    try
      (match Hashtbl.find_opt img.xfuncs "__mi_global_init" with
      | Some f -> ignore (exec_call st !f [||])
      | None -> ());
      match Hashtbl.find_opt img.xfuncs entry with
      | None -> Trapped ("no entry function " ^ entry)
      | Some f -> (
          match exec_call st !f [||] with
          | Some (State.I code) -> Exited code
          | Some (State.F _) -> Exited 0
          | None -> Exited 0)
    with
    | State.Exit_program code -> Exited code
    | State.Safety_abort { checker; reason } ->
        Safety_violation { checker; reason }
    | State.Trap msg -> Trapped msg
    | State.Fuel_exhausted budget -> Exhausted budget
    | Memory.Fault (addr, msg) ->
        Trapped (Printf.sprintf "memory fault at %#x: %s" addr msg)
  in
  (* fold the execution-level quantities into the metrics namespace so a
     single serialized registry describes the whole run *)
  Mi_obs.Metrics.set_gauge st.metrics "vm.cycles" st.cycles;
  Mi_obs.Metrics.set_gauge st.metrics "vm.steps" st.steps;
  Mi_obs.Metrics.set_gauge st.metrics "vm.mem_pages" st.mem.Memory.page_count;
  {
    outcome;
    cycles = st.cycles;
    steps = st.steps;
    output = State.output st;
    counters = State.counters_alist st;
    mem_pages = st.mem.Memory.page_count;
  }
