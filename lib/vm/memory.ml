(** Sparse paged byte memory with little-endian accessors.

    Pages are materialized zero-filled on first touch.  The only hard
    fault is touching the null guard page (or a negative address): real
    out-of-bounds accesses into padding or neighbouring allocations behave
    exactly like on hardware — they silently read or corrupt memory.
    Ground truth about memory-safety violations comes from the
    instrumentation, not from the VM. *)

exception Fault of int * string
(** address, description *)

type t = {
  pages : (int, Bytes.t) Hashtbl.t;
  mutable page_count : int;
  max_pages : int;
}

let create ?(max_pages = 1 lsl 19) () =
  { pages = Hashtbl.create 1024; page_count = 0; max_pages }

let page_of t addr =
  let idx = addr lsr Layout.page_bits in
  match Hashtbl.find_opt t.pages idx with
  | Some p -> p
  | None ->
      if t.page_count >= t.max_pages then
        raise (Fault (addr, "out of VM memory (page limit)"));
      let p = Bytes.make Layout.page_size '\000' in
      Hashtbl.add t.pages idx p;
      t.page_count <- t.page_count + 1;
      p

let check_addr t addr width =
  ignore t;
  if addr < Layout.null_guard then
    raise (Fault (addr, "access to null guard page"));
  if width < 0 then raise (Fault (addr, "negative access width"))

let offset addr = addr land (Layout.page_size - 1)

(* Fast path: access contained in one page. *)
let fits_page addr width = offset addr + width <= Layout.page_size

let load8 t addr =
  check_addr t addr 1;
  Char.code (Bytes.get (page_of t addr) (offset addr))

let store8 t addr v =
  check_addr t addr 1;
  Bytes.set (page_of t addr) (offset addr) (Char.chr (v land 0xff))

let load t addr width =
  check_addr t addr width;
  if fits_page addr width then begin
    let p = page_of t addr in
    let off = offset addr in
    match width with
    | 1 -> Char.code (Bytes.get p off)
    | 2 -> Bytes.get_uint16_le p off
    | 4 -> Int32.to_int (Bytes.get_int32_le p off) land 0xffffffff
    | 8 -> Int64.to_int (Bytes.get_int64_le p off)
    | _ -> raise (Fault (addr, "bad access width"))
  end
  else begin
    let v = ref 0 in
    for i = width - 1 downto 0 do
      v := (!v lsl 8) lor load8 t (addr + i)
    done;
    !v
  end

let store t addr width v =
  check_addr t addr width;
  if fits_page addr width then begin
    let p = page_of t addr in
    let off = offset addr in
    match width with
    | 1 -> Bytes.set p off (Char.chr (v land 0xff))
    | 2 -> Bytes.set_uint16_le p off (v land 0xffff)
    | 4 -> Bytes.set_int32_le p off (Int32.of_int v)
    | 8 -> Bytes.set_int64_le p off (Int64.of_int v)
    | _ -> raise (Fault (addr, "bad access width"))
  end
  else
    for i = 0 to width - 1 do
      store8 t (addr + i) ((v lsr (8 * i)) land 0xff)
    done

(* f64 values keep their full 64-bit pattern: they must not round-trip
   through OCaml's 63-bit int (the sign/exponent bits would be clipped). *)
let load_i64_full t addr =
  check_addr t addr 8;
  if fits_page addr 8 then Bytes.get_int64_le (page_of t addr) (offset addr)
  else begin
    let v = ref 0L in
    for i = 7 downto 0 do
      v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int (load8 t (addr + i)))
    done;
    !v
  end

let store_i64_full t addr v =
  check_addr t addr 8;
  if fits_page addr 8 then Bytes.set_int64_le (page_of t addr) (offset addr) v
  else
    for i = 0 to 7 do
      store8 t (addr + i)
        (Int64.to_int (Int64.shift_right_logical v (8 * i)) land 0xff)
    done

let load_f64 t addr = Int64.float_of_bits (load_i64_full t addr)
let store_f64 t addr f = store_i64_full t addr (Int64.bits_of_float f)

(** Copy [len] bytes from [src] to [dst]; regions may overlap
    ([memmove] semantics).

    Page-chunked: each chunk stays inside one source page and one
    destination page and moves with [Bytes.blit] (overlap-safe within a
    page).  Chunks advance in the same direction the byte-at-a-time
    reference walked — ascending for [dst <= src], descending otherwise —
    and each chunk materializes its source page before its destination
    page, exactly like the byte loop's load-then-store, so page faults
    (the page limit) fire with identical partial state and page counts. *)
let copy t ~dst ~src len =
  if len > 0 then begin
    check_addr t dst len;
    check_addr t src len;
    if dst <= src then begin
      let i = ref 0 in
      while !i < len do
        let s = src + !i and d = dst + !i in
        let n =
          min (len - !i)
            (min (Layout.page_size - offset s) (Layout.page_size - offset d))
        in
        let sp = page_of t s in
        let dp = page_of t d in
        Bytes.blit sp (offset s) dp (offset d) n;
        i := !i + n
      done
    end
    else begin
      let i = ref len in
      while !i > 0 do
        (* chunk covers bytes [i-n, i); bounded by how far the last byte
           sits into its source and destination pages *)
        let slast = src + !i - 1 and dlast = dst + !i - 1 in
        let n = min !i (min (offset slast + 1) (offset dlast + 1)) in
        let s = src + !i - n and d = dst + !i - n in
        let sp = page_of t s in
        let dp = page_of t d in
        Bytes.blit sp (offset s) dp (offset d) n;
        i := !i - n
      done
    end
  end

let fill t ~dst ~byte len =
  if len > 0 then begin
    check_addr t dst len;
    let c = Char.chr (byte land 0xff) in
    let i = ref 0 in
    while !i < len do
      let d = dst + !i in
      let n = min (len - !i) (Layout.page_size - offset d) in
      Bytes.fill (page_of t d) (offset d) n c;
      i := !i + n
    done
  end

(** Read a NUL-terminated string (bounded at 1 MiB to catch runaways). *)
let load_cstring t addr =
  let buf = Buffer.create 16 in
  let rec go a =
    if Buffer.length buf > 1 lsl 20 then
      raise (Fault (addr, "unterminated C string"));
    let c = load8 t a in
    if c <> 0 then begin
      Buffer.add_char buf (Char.chr c);
      go (a + 1)
    end
  in
  go addr;
  Buffer.contents buf

(** Write a string followed by a NUL byte. *)
let store_cstring t addr s =
  String.iteri (fun i c -> store8 t (addr + i) (Char.code c)) s;
  store8 t (addr + String.length s) 0

let store_bytes t addr s =
  String.iteri (fun i c -> store8 t (addr + i) (Char.code c)) s
