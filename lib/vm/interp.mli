(** The MIR interpreter: linking, loading, and execution on the VM.

    Functions are precompiled into a dense executable form (register
    slots, block indices, per-edge parallel phi moves); execution charges
    cycles according to the {!Cost} model — the quantity the paper's
    runtime figures are built from. *)

open Mi_mir

exception Link_error of string

type image
(** A loaded program: linked module, laid-out globals, precompiled
    functions. *)

val link : Irmod.t list -> Irmod.t
(** Merge separately compiled translation units: definitions resolve the
    extern declarations of sibling units (the paper's link step, Fig. 8);
    duplicate definitions raise {!Link_error}. *)

val load :
  ?alloc_global:
    (State.t -> name:string -> size:int -> align:int -> int option) ->
  State.t ->
  Irmod.t list ->
  image
(** Link, lay out and initialize globals, and precompile all functions.
    [alloc_global] decides placement per defined global: return
    [Some addr] to place it yourself (Low-Fat global mirroring), [None]
    for the default (non-low-fat) globals segment.  Extern globals with
    no definition anywhere model external-library globals and always land
    in the globals segment. *)

type outcome =
  | Exited of int
  | Safety_violation of { checker : string; reason : string }
      (** an instrumentation check aborted — the "report error" edge of
          the paper's Figure 1 *)
  | Trapped of string  (** VM-level error: wild access, ... *)
  | Exhausted of int
      (** the fuel budget (payload) ran out — resource exhaustion, e.g.
          an infinite loop, distinct from a program error *)

type result = {
  outcome : outcome;
  cycles : int;  (** modeled execution time *)
  steps : int;  (** dynamic instruction count *)
  output : string;  (** collected program output *)
  counters : (string * int) list;  (** runtime statistics, sorted *)
  mem_pages : int;  (** 4 KiB pages touched *)
}

val run : ?entry:string -> State.t -> image -> result
(** Execute [entry] (default ["main"]).  If the image defines
    [__mi_global_init] (SoftBound's constructor for pointers in global
    initializers), it runs first. *)

val func_regs : image -> string -> (int * int) option
(** [(n_iregs, n_fregs)] of a loaded (non-external) function — the
    register-bank sizes every call of it allocates.  Exposed so tests can
    pin precompiler frame-size properties (e.g. discarded results share
    one scratch slot per bank). *)

(** / *)

val merged_module : image -> Irmod.t
