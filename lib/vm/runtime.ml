(** Unified builtin registration for checker runtimes.

    Every checker runtime installs the same way: a list of named entry
    points, each with a generic boxed implementation and (usually) a
    typed fast twin for the interpreter's fused superinstructions.
    [register] enforces the ordering contract of {!State}: all generic
    builtins first (each registration drops any stale fast twin of the
    same name and bumps [builtin_gen]), then the fast twins. *)

type entry = {
  e_name : string;
  e_generic : State.t -> State.value array -> State.value option;
  e_fast : State.fast_fn option;
      (** [None] for entry points never named by fused call sites *)
}

(** Convenience constructor. *)
let entry ?fast name generic = { e_name = name; e_generic = generic; e_fast = fast }

let register (st : State.t) (entries : entry list) =
  List.iter (fun e -> State.register_builtin st e.e_name e.e_generic) entries;
  List.iter
    (fun e ->
      match e.e_fast with
      | Some f -> State.register_fast_builtin st e.e_name f
      | None -> ())
    entries
