(** Deterministic cycle cost model.

    The paper measures wall-clock time on an i9-10900K; our substrate is an
    interpreter, so execution time is modeled as cycles charged per executed
    instruction and per runtime call.  The relative magnitudes follow the
    instruction sequences of the paper's Figures 2 (SoftBound check) and 5
    (Low-Fat check) and its attribution of overheads in §5.2/§5.4: a
    SoftBound check is cheaper than a Low-Fat check, while SoftBound's trie
    accesses are far more expensive than Low-Fat's base recomputation. *)

type t = {
  alu : int;
  mul : int;
  div : int;
  fpu : int;
  load : int;
  store : int;
  gep_term : int;  (** per scaled index *)
  branch : int;
  select : int;
  call_overhead : int;  (** per dynamic call, caller+callee bookkeeping *)
  memop_per_byte_num : int;  (** memcpy/memset cost numerator per byte *)
  memop_per_byte_den : int;
  (* runtime intrinsics *)
  sb_check : int;  (** two compares + branch (Fig. 2) *)
  lf_check : int;  (** region index, size lookup, sub, compare (Fig. 5) *)
  lf_base : int;  (** mask recomputation of the base pointer *)
  sb_trie_load : int;  (** two dependent memory indirections *)
  sb_trie_store : int;
  ss_op : int;  (** one shadow-stack slot read/write *)
  ss_frame : int;  (** shadow-stack frame enter/leave *)
  alloc : int;  (** allocator call *)
  lf_alloc : int;  (** low-fat allocator: size-class push/pop *)
  tp_check : int;  (** lock load via key + liveness compare (CETS Fig. 4) *)
  tp_meta : int;  (** temporal key-table / key-trie access *)
}

let default =
  {
    alu = 1;
    mul = 3;
    div = 20;
    fpu = 3;
    load = 4;
    store = 4;
    gep_term = 1;
    branch = 1;
    select = 1;
    call_overhead = 8;
    memop_per_byte_num = 1;
    memop_per_byte_den = 4;
    sb_check = 10;
    lf_check = 14;
    lf_base = 6;
    sb_trie_load = 30;
    sb_trie_store = 30;
    ss_op = 4;
    ss_frame = 4;
    alloc = 80;
    lf_alloc = 60;
    tp_check = 8;
    tp_meta = 12;
  }

let memop_cost t len =
  if len <= 0 then t.alu
  else t.alu + ((len * t.memop_per_byte_num) / t.memop_per_byte_den) + 1
