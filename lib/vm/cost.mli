(** Deterministic cycle cost model.

    The paper measures wall-clock time on an i9-10900K; this substrate is
    an interpreter, so execution time is modeled as cycles charged per
    executed instruction and per runtime call.  The relative magnitudes
    follow the instruction sequences of the paper's Figure 2 (SoftBound
    check: two compares) and Figure 5 (Low-Fat check: region index, size
    lookup, subtract, compare) and its attribution of overheads in
    §5.2/§5.4: a SoftBound check is cheaper than a Low-Fat check, while
    SoftBound's trie accesses dwarf Low-Fat's base recomputation. *)

type t = {
  alu : int;
  mul : int;
  div : int;
  fpu : int;
  load : int;
  store : int;
  gep_term : int;  (** per scaled index of a gep *)
  branch : int;
  select : int;
  call_overhead : int;
  memop_per_byte_num : int;
  memop_per_byte_den : int;
  sb_check : int;
  lf_check : int;
  lf_base : int;
  sb_trie_load : int;
  sb_trie_store : int;
  ss_op : int;  (** one shadow-stack slot read/write *)
  ss_frame : int;
  alloc : int;
  lf_alloc : int;
  tp_check : int;  (** lock load via key + liveness compare (CETS Fig. 4) *)
  tp_meta : int;  (** temporal key-table / key-trie access *)
}

val default : t

val memop_cost : t -> int -> int
(** Cost of a [memcpy]/[memset] of the given byte length. *)
