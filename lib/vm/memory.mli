(** Sparse paged byte memory with little-endian accessors.

    Pages materialize zero-filled on first touch.  The only hard fault is
    the null guard page: real out-of-bounds accesses into padding or
    neighbouring allocations behave exactly like hardware — they silently
    read or corrupt memory.  Ground truth about violations comes from the
    instrumentation, not the VM. *)

exception Fault of int * string
(** (address, description) *)

type t = {
  pages : (int, Bytes.t) Hashtbl.t;
  mutable page_count : int;
  max_pages : int;
}

val create : ?max_pages:int -> unit -> t

val load8 : t -> int -> int
val store8 : t -> int -> int -> unit

val load : t -> int -> int -> int
(** [load t addr width] for widths 1, 2, 4, 8, little-endian; the result
    is the raw unsigned bit pattern (callers normalize by type). *)

val store : t -> int -> int -> int -> unit
(** [store t addr width v]. *)

val load_f64 : t -> int -> float
val store_f64 : t -> int -> float -> unit
(** [f64] values keep their full 64-bit pattern (no round trip through
    OCaml's 63-bit int). *)

val load_i64_full : t -> int -> int64
val store_i64_full : t -> int -> int64 -> unit
(** Full-width 64-bit accessors underlying the [f64] pair — exposed so
    tests can pin the cross-page slow paths bit-for-bit against the
    in-page fast paths. *)

val copy : t -> dst:int -> src:int -> int -> unit
(** [memmove] semantics: overlapping ranges copy correctly. *)

val fill : t -> dst:int -> byte:int -> int -> unit

val load_cstring : t -> int -> string
(** Read a NUL-terminated string (bounded; traps on runaways). *)

val store_cstring : t -> int -> string -> unit
val store_bytes : t -> int -> string -> unit
