(** VM-level fault injection: installs {!Mi_faultkit.Fault.vm_fault}s
    onto a {!State.t} through the interpreter's poll-hook mechanism, and
    arms wall-clock deadlines the same way.

    Hooks fire from {!Interp}'s per-step tick, so faults land at exact
    dynamic step counts — deterministic and reproducible.  Each injected
    fault increments the ["fault.injected"] counter. *)

open Mi_faultkit

let fired st = State.bump st "fault.injected"

(* A one-shot hook: re-arms itself (by lowering [next_poll_step]) while
   its step has not come up, runs [fire] exactly once when it has. *)
let one_shot st ~at_step fire =
  let pending = ref true in
  State.add_poll st ~at_step (fun st ->
      if !pending then
        if st.State.steps >= at_step then begin
          pending := false;
          fire st
        end
        else if at_step < st.State.next_poll_step then
          st.State.next_poll_step <- at_step)

let install_one st = function
  | Fault.Fuel_cap n ->
      fired st;
      if n < st.State.fuel then st.State.fuel <- n
  | Fault.Wild_write { at_step; addr; value } ->
      one_shot st ~at_step (fun st ->
          fired st;
          (* a wild write may well target an unmapped address; the fault
             is "memory silently changed", not a VM fault *)
          try Memory.store st.State.mem addr 8 value
          with Memory.Fault _ -> ())
  | Fault.Trap_at at_step ->
      one_shot st ~at_step (fun st ->
          fired st;
          raise (State.Trap (Printf.sprintf "injected trap at step %d" at_step)))

(** Install every VM fault of [plan] on [st]. *)
let install plan st = List.iter (install_one st) plan.Fault.vm

(** Arm a deadline on the monotonic timeline: once
    [Mi_support.Mclock.now () > deadline], the next poll raises
    {!Fault.Job_timeout}[ budget].  [deadline] must come from
    {!Mi_support.Mclock.deadline} — comparing against the raw wall
    clock made a stepped clock fire spurious timeouts (forward jump) or
    arbitrarily late ones (backward jump).  The clock is sampled every
    [interval] steps (default 4096) to keep the hot path cheap.  The
    exception carries the budget, not the measured time, so failure
    messages stay deterministic. *)
let arm_deadline ?(interval = 4096) st ~deadline ~budget =
  let hook (st : State.t) =
    if Mi_support.Mclock.expired deadline then raise (Fault.Job_timeout budget)
    else begin
      let at = st.State.steps + interval in
      if at < st.State.next_poll_step then st.State.next_poll_step <- at
    end
  in
  State.add_poll st ~at_step:interval hook
