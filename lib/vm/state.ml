(** Mutable VM state: memory, cycle/step accounting, allocator hooks,
    statistics, and the builtin-function registry.

    The memory-safety runtimes ({!Mi_lowfat}, {!Mi_softbound}) do not live
    in this library; they attach to a state by registering builtins and
    replacing the allocator hooks.  This keeps the VM generic and lets the
    harness run the same program under different runtime configurations.

    Runtime statistics live in a {!Mi_obs.Metrics} registry (counters,
    gauges, histograms — one namespace shared with the instrumenter's
    static statistics when the harness passes a common registry), and
    check executions are attributed to their instrumentation site
    through a {!Mi_obs.Site} registry. *)

type value = I of int | F of float

let as_int = function I x -> x | F _ -> invalid_arg "expected int value"
let as_float = function F x -> x | I _ -> invalid_arg "expected float value"

exception Exit_program of int

exception Safety_abort of { checker : string; reason : string }
(** Raised by check intrinsics on a detected violation — the
    instrumentation's "report error & abort" path of Figure 1. *)

exception Trap of string
(** VM-level error: wild access, division by zero, ... *)

exception Fuel_exhausted of int
(** The dynamic step budget ran out (payload: the budget).  Distinct
    from {!Trap} so callers can report resource exhaustion separately
    from program errors. *)

(** Typed entry points for the interpreter's fused check
    superinstructions, registered by the runtimes alongside the generic
    builtin of the same name.  A fast function must be observationally
    identical to its generic twin — same cycle charges, same counters,
    same site attribution, same aborts — the interpreter merely skips
    the boxed [value array] calling convention.  Arguments and results
    are integers (pointers, widths, slots, site ids); nothing on the
    check path is float-typed. *)
type fast_fn =
  | F0 of (t -> unit)
  | F1 of (t -> int -> unit)
  | F2 of (t -> int -> int -> unit)
  | F3 of (t -> int -> int -> int -> unit)
  | F4 of (t -> int -> int -> int -> int -> unit)
  | F5 of (t -> int -> int -> int -> int -> int -> unit)
  | FR1 of (t -> int -> int)  (** one int argument, int result *)

and t = {
  mem : Memory.t;
  cost : Cost.t;
  mutable cycles : int;
  mutable steps : int;
  mutable fuel : int;  (** max dynamic instructions before trapping *)
  mutable next_poll_step : int;
      (** earliest step any poll hook wants to run at; [max_int] when
          none is pending, so the interpreter's hot path pays a single
          comparison *)
  mutable poll_hooks : (t -> unit) list;
  out : Buffer.t;
  metrics : Mi_obs.Metrics.t;
  sites : Mi_obs.Site.t;
      (** check-site profile; shared with the instrumenter for per-site
          attribution, otherwise an empty registry that ignores hits *)
  coverage : Mi_obs.Coverage.t option;
      (** block/edge coverage registry.  [None] (the default) means the
          interpreter records nothing and the hot path pays only a
          per-block option check; [Some] makes {!Mi_vm.Interp.load}
          register every function's CFG geometry and the frame loop
          count block entries and edge traversals.  Recording is a pure
          side band: it never touches cycles, steps or counters, so
          coverage-on and coverage-off runs are observationally
          identical everywhere else. *)
  rng : Mi_support.Rng.t;
  builtins : (string, t -> value array -> value option) Hashtbl.t;
  fast_builtins : (string, fast_fn) Hashtbl.t;
      (** typed entry points for the interpreter's fused
          superinstructions; always registered alongside a generic
          builtin of the same name with identical observable behaviour *)
  mutable builtin_gen : int;
      (** bumped on every builtin (re)registration; interpreter
          call-site caches revalidate when it changes *)
  mutable fast_dispatch : bool;
      (** when [false], {!Mi_vm.Interp.load} never fuses intrinsic calls
          into superinstructions: every runtime call dispatches through
          the generic boxed builtin.  Fusion is a load-time decision, so
          flip this {e before} loading an image.  The fast twins are
          contractually observationally identical to their generic
          builtins; this switch exists so that the contract is
          differentially testable (the fuzzing oracle runs every program
          both ways and demands byte-identical results). *)
  mutable malloc_hook : t -> int -> int;
  mutable free_hook : t -> int -> unit;
  mutable frame_enter_hook : t -> unit;
  mutable frame_exit_hook : t -> unit;
  (* standard allocator state *)
  mutable heap_brk : int;
  free_lists : (int, int list ref) Hashtbl.t;  (** size-class -> free list *)
  alloc_sizes : (int, int) Hashtbl.t;  (** live allocation -> usable size *)
  (* conventional stack *)
  mutable stack_ptr : int;
}

let charge t c = t.cycles <- t.cycles + c

(** Ask for [fn] to run once [t.steps] reaches [at_step].  Hooks that
    want to keep polling re-arm themselves by lowering
    [t.next_poll_step] again from inside the callback (fault injectors
    and wall-clock deadlines do exactly that). *)
let add_poll t ~at_step fn =
  t.poll_hooks <- fn :: t.poll_hooks;
  if at_step < t.next_poll_step then t.next_poll_step <- at_step

(** Run every poll hook.  The pending step resets first so hooks can
    re-arm; hooks that have nothing left to do simply return without
    touching [next_poll_step]. *)
let run_polls t =
  t.next_poll_step <- max_int;
  List.iter (fun fn -> fn t) t.poll_hooks

let bump ?(by = 1) t key = Mi_obs.Metrics.incr ~by t.metrics key

let counter t key = Mi_obs.Metrics.counter t.metrics key

(** Counters sorted by key — {!Mi_obs.Metrics.counters_alist} is the
    only order the registry exposes, so reports are deterministic. *)
let counters_alist t = Mi_obs.Metrics.counters_alist t.metrics

let observe t key v = Mi_obs.Metrics.observe t.metrics key v

(** Attribute one executed check to instrumentation site [id] (a
    negative or unknown id is ignored). *)
let site_hit t id ~wide ~cycles = Mi_obs.Site.hit t.sites id ~wide ~cycles

(** (Re)register a builtin.  Bumps [builtin_gen] so every resolved
    call-site cache in already-loaded images revalidates, and drops any
    fast twin of the same name — a replacement generic builtin silently
    shadowed by a stale fast function would be a correctness bug.
    Re-register the fast twin (after the generic) if it still applies. *)
let register_builtin t name fn =
  t.builtin_gen <- t.builtin_gen + 1;
  Hashtbl.remove t.fast_builtins name;
  Hashtbl.replace t.builtins name fn

let find_builtin t name = Hashtbl.find_opt t.builtins name

(** Register the typed fast twin of an already-registered generic
    builtin.  Call this {e after} {!register_builtin} for the same name
    (which removes fast entries).  Also bumps [builtin_gen] so loaded
    images pick the fast path up. *)
let register_fast_builtin t name ffn =
  t.builtin_gen <- t.builtin_gen + 1;
  Hashtbl.replace t.fast_builtins name ffn

let find_fast_builtin t name = Hashtbl.find_opt t.fast_builtins name

(* --- standard allocator -------------------------------------------- *)

(* Size-class segregated free lists over a bump region: deterministic and
   cheap.  Classes are powers of two from 16 bytes. *)

let size_class sz = Mi_support.Util.round_up_pow2 (max sz 16)

let std_malloc t sz =
  if sz < 0 then raise (Trap "malloc with negative size");
  charge t t.cost.Cost.alloc;
  bump t "std.malloc";
  observe t "alloc.bytes" sz;
  let cls = size_class (max sz 1) in
  let addr =
    match Hashtbl.find_opt t.free_lists cls with
    | Some ({ contents = a :: rest } as l) ->
        l := rest;
        a
    | _ ->
        let a = Mi_support.Util.align_up t.heap_brk (min cls 4096) in
        if a + cls > Layout.heap_limit then raise (Trap "standard heap exhausted");
        t.heap_brk <- a + cls;
        a
  in
  Hashtbl.replace t.alloc_sizes addr sz;
  addr

let std_free t addr =
  if addr <> 0 then begin
    charge t t.cost.Cost.alloc;
    bump t "std.free";
    match Hashtbl.find_opt t.alloc_sizes addr with
    | None -> raise (Trap (Printf.sprintf "free of non-allocated %#x" addr))
    | Some sz ->
        Hashtbl.remove t.alloc_sizes addr;
        let cls = size_class (max sz 1) in
        (match Hashtbl.find_opt t.free_lists cls with
        | Some l -> l := addr :: !l
        | None -> Hashtbl.add t.free_lists cls (ref [ addr ]))
  end

let create ?(cost = Cost.default) ?(fuel = 2_000_000_000) ?(seed = 42)
    ?metrics ?sites ?coverage () =
  let metrics =
    match metrics with Some m -> m | None -> Mi_obs.Metrics.create ()
  in
  let sites = match sites with Some s -> s | None -> Mi_obs.Site.create () in
  let t =
    {
      mem = Memory.create ();
      cost;
      cycles = 0;
      steps = 0;
      fuel;
      next_poll_step = max_int;
      poll_hooks = [];
      out = Buffer.create 256;
      metrics;
      sites;
      coverage;
      rng = Mi_support.Rng.create seed;
      builtins = Hashtbl.create 64;
      fast_builtins = Hashtbl.create 16;
      builtin_gen = 0;
      fast_dispatch = true;
      malloc_hook = (fun _ _ -> 0);
      free_hook = (fun _ _ -> ());
      frame_enter_hook = (fun _ -> ());
      frame_exit_hook = (fun _ -> ());
      heap_brk = Layout.heap_base;
      free_lists = Hashtbl.create 16;
      alloc_sizes = Hashtbl.create 256;
      stack_ptr = Layout.stack_top;
    }
  in
  t.malloc_hook <- std_malloc;
  t.free_hook <- std_free;
  t

let output t = Buffer.contents t.out
