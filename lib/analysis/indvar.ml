(** Canonical counted-loop recognition.

    A {e counted loop} is the shape the scalar optimizer leaves hot
    loops in at every extension point past LICM/GVN: an induction phi
    in the header that starts at a constant, advances by a constant
    positive step along every latch, and is tested once — in the
    header — against a constant exclusive bound, with that test as the
    loop's only exit.  The check-elimination passes (loop-invariant
    check hoisting with range widening, and the static in-bounds
    constraint pass) both key on this shape: it gives the induction
    variable a closed-form value interval [[init, last]] that is exact,
    not an approximation. *)

open Mi_mir

type counted = {
  iv : Value.var;  (** the induction phi defined in the header *)
  init : int;  (** first value (from the preheader edge) *)
  step : int;  (** constant per-iteration increment, > 0 *)
  bound : int;  (** exclusive upper bound of the header test *)
  last : int;
      (** largest value the induction variable takes inside the body:
          [init + step * ((bound - 1 - init) / step)] *)
}

let in_body (l : Loops.loop) b = List.mem b l.Loops.body

(* The defining instruction of a variable inside one block, if any. *)
let def_in_block (b : Block.t) (x : Value.var) : Instr.t option =
  List.find_opt
    (fun (i : Instr.t) ->
      match i.Instr.dst with
      | Some d -> Value.var_equal d x
      | None -> false)
    b.Block.body

(* Does [v] advance [iv] by a constant positive step?  The latch value
   must be [iv + step] (either operand order) with the addition defined
   anywhere in the loop body. *)
let step_of (cfg : Cfg.t) (l : Loops.loop) (iv : Value.var) (v : Value.t) :
    int option =
  match v with
  | Value.Var x ->
      let def =
        List.fold_left
          (fun acc bi ->
            match acc with
            | Some _ -> acc
            | None -> def_in_block (Cfg.block cfg bi) x)
          None l.Loops.body
      in
      (match def with
      | Some { Instr.op = Instr.Bin (Instr.Add, _, a, b); _ } -> (
          match (a, b) with
          | Value.Var y, Value.Int (_, k) when Value.var_equal y iv && k > 0 ->
              Some k
          | Value.Int (_, k), Value.Var y when Value.var_equal y iv && k > 0 ->
              Some k
          | _ -> None)
      | _ -> None)
  | _ -> None

(** Recognize [l] as a canonical counted loop.  Requirements:

    - the loop has a preheader (so there is one entry edge);
    - the header terminator is a conditional branch on an
      [Icmp (Slt|Ult) iv bound] defined in the header, with [bound] a
      constant, branching into the body when true and out of the loop
      when false;
    - the header test is the {e only} exit: no other body block
      branches outside the loop;
    - [iv] is a header phi whose preheader incoming is a constant and
      whose incoming along {e every} latch is [iv + step] for one
      constant [step > 0];
    - the loop runs at least one iteration ([init < bound]).

    Under these conditions the body executes exactly for the induction
    values [init, init+step, ..., last] — the interval the caller may
    treat as exact. *)
let counted_loop (cfg : Cfg.t) (l : Loops.loop) : counted option =
  match Loops.preheader cfg l with
  | None -> None
  | Some pre -> (
      let header = Cfg.block cfg l.Loops.header in
      (* single-exit: only the header may branch out of the loop *)
      let single_exit =
        List.for_all
          (fun bi ->
            bi = l.Loops.header
            || List.for_all (fun s -> in_body l s) cfg.Cfg.succs.(bi))
          l.Loops.body
      in
      if not single_exit then None
      else
        match header.Block.term with
        | Instr.Cbr (Value.Var cond, t_lbl, e_lbl) -> (
            let t_idx = Cfg.index cfg t_lbl and e_idx = Cfg.index cfg e_lbl in
            if not (in_body l t_idx && not (in_body l e_idx)) then None
            else
              match def_in_block header cond with
              | Some
                  {
                    Instr.op =
                      Instr.Icmp
                        ((Instr.Slt | Instr.Ult), _, Value.Var iv, Value.Int (_, bound));
                    _;
                  } -> (
                  let phi =
                    List.find_opt
                      (fun (p : Instr.phi) -> Value.var_equal p.Instr.pdst iv)
                      header.Block.phis
                  in
                  match phi with
                  | None -> None
                  | Some p -> (
                      let incoming_of lbl =
                        List.assoc_opt lbl p.Instr.incoming
                      in
                      let init =
                        match incoming_of (Cfg.label cfg pre) with
                        | Some (Value.Int (_, k)) -> Some k
                        | _ -> None
                      in
                      let steps =
                        List.map
                          (fun latch ->
                            match incoming_of (Cfg.label cfg latch) with
                            | Some v -> step_of cfg l iv v
                            | None -> None)
                          l.Loops.latches
                      in
                      match (init, steps) with
                      | Some init, s :: rest
                        when s <> None && List.for_all (( = ) s) rest ->
                          let step = Option.get s in
                          if init >= bound then None
                          else
                            Some
                              {
                                iv;
                                init;
                                step;
                                bound;
                                last = init + (step * ((bound - 1 - init) / step));
                              }
                      | _ -> None))
              | _ -> None)
        | _ -> None)

let trip_count (c : counted) = ((c.last - c.init) / c.step) + 1
