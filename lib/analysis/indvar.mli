(** Canonical counted-loop recognition: a header induction phi with a
    constant init, constant positive step along every latch, and a
    single [Icmp (Slt|Ult) iv bound] header exit against a constant
    bound.  Gives the induction variable the {e exact} value interval
    [[init, last]] that the check-elimination passes (hoisting with
    range widening, static in-bounds proofs) rely on. *)

open Mi_mir

type counted = {
  iv : Value.var;  (** the induction phi defined in the header *)
  init : int;  (** first value (preheader edge), [init < bound] *)
  step : int;  (** constant per-iteration increment, > 0 *)
  bound : int;  (** exclusive upper bound of the header test *)
  last : int;  (** largest value taken inside the body *)
}

val in_body : Loops.loop -> int -> bool
(** Is block index [b] part of the loop's body (header included)? *)

val counted_loop : Cfg.t -> Loops.loop -> counted option
(** Recognize a canonical counted loop: preheader present, header test
    is the only exit, induction phi with constant init and uniform
    constant positive step, at least one iteration.  When [Some], the
    body executes exactly for induction values
    [init, init+step, ..., last]. *)

val trip_count : counted -> int
(** Number of iterations: [(last - init) / step + 1]. *)
