.PHONY: all build test fmt ci bench clean

all: build

build:
	dune build

test:
	dune runtest

fmt:
	dune build @fmt

# full CI gate: build + tests + fmt (if ocamlformat is installed) + a
# JSON-validated experiments smoke run
ci:
	sh bench/ci.sh

bench:
	dune exec bench/main.exe

clean:
	dune clean
