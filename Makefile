.PHONY: all build test fmt ci bench report clean

all: build

build:
	dune build

test:
	dune runtest

fmt:
	dune build @fmt

# full CI gate: build + tests + fmt (if ocamlformat is installed) + a
# JSON-validated experiments smoke run
ci:
	sh bench/ci.sh

bench:
	dune exec bench/main.exe

# end-to-end observability demo: run one experiment with a persistent
# profile (check-site hits + VM coverage), then render the offline
# report — hottest checks, per-function coverage, never-executed sites
report:
	dune exec bin/experiments.exe -- --benchmark 470lbm \
		--profile-out /tmp/mi-report-demo.json hotchecks
	dune exec bin/mireport.exe -- report /tmp/mi-report-demo.json --top 10

clean:
	dune clean
