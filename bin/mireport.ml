(** Offline reporting over persistent profiles.

    {v
    mireport report run.json                 # hot sites + coverage
    mireport report run.json --top 10
    mireport report run.json --flame out.folded   # flamegraph export
    mireport diff old.json new.json          # CI regression gate
    mireport diff old.json new.json --threshold 10
    v}

    [report] renders one profile: the top-N hottest check sites with
    source attribution, the per-function block/edge coverage summary
    (including never-executed check sites), and — with [--flame] — the
    span counts as collapsed stacks ("path count" lines) ready for
    [flamegraph.pl] or speedscope.

    [diff] compares a current profile against a baseline and prints
    every flagged regression: functions whose hit-block or hit-edge
    coverage dropped by more than the threshold, and check sites whose
    dynamic hit count grew by more than the threshold.  Exit status 0
    when clean, 1 when regressions were flagged (the CI gate), 2 on
    unreadable or invalid profiles. *)

open Cmdliner
module Profile = Mi_obs.Profile
module Site = Mi_obs.Site

let load_or_die path =
  try Profile.load path
  with Profile.Invalid_profile msg ->
    Printf.eprintf "mireport: invalid profile %s: %s\n" path msg;
    exit 2

(* --- report -------------------------------------------------------- *)

let write_flame path (p : Profile.t) =
  let oc =
    try open_out path
    with Sys_error msg ->
      Printf.eprintf "mireport: cannot write %s: %s\n" path msg;
      exit 2
  in
  List.iter
    (fun (stack, count) -> Printf.fprintf oc "%s %d\n" stack count)
    p.Profile.pr_spans;
  close_out oc;
  Printf.printf "(wrote %s, %d stacks)\n" path (List.length p.Profile.pr_spans)

let run_report file top flame =
  let p = load_or_die file in
  Printf.printf "== profile %s ==\n" file;
  (match p.Profile.pr_sites with
  | [] -> print_string "no check sites recorded (uninstrumented run?)\n"
  | sites -> print_string (Site.render ~n:top sites));
  print_newline ();
  print_string (Profile.coverage_summary p);
  Option.iter (fun path -> write_flame path p) flame;
  0

(* --- diff ---------------------------------------------------------- *)

let run_diff baseline_file current_file threshold min_hits =
  let baseline = load_or_die baseline_file in
  let current = load_or_die current_file in
  match
    Profile.diff ~min_hits ~threshold:(threshold /. 100.) ~baseline current
  with
  | [] ->
      Printf.printf "no regressions: %s vs %s (threshold %g%%)\n"
        current_file baseline_file threshold;
      0
  | changes ->
      Printf.printf "%d regression(s): %s vs %s (threshold %g%%)\n"
        (List.length changes) current_file baseline_file threshold;
      List.iter
        (fun c -> Printf.printf "  %s\n" (Profile.change_to_string c))
        changes;
      1

(* --- command line -------------------------------------------------- *)

let profile_pos n docv =
  Arg.(required & pos n (some file) None & info [] ~docv)

let top_arg =
  Arg.(
    value & opt int 20
    & info [ "top" ] ~docv:"N"
        ~doc:"number of hot check sites to print (default 20)")

let flame_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "flame" ] ~docv:"FILE"
        ~doc:
          "write the span counts as collapsed stacks (one \"path count\" \
           line each), the input format of flamegraph.pl and speedscope")

let threshold_arg =
  Arg.(
    value & opt float 5.0
    & info [ "threshold" ] ~docv:"PCT"
        ~doc:
          "regression threshold in percent (default 5): flag coverage \
           drops and hit-count growth beyond this fraction of the \
           baseline")

let min_hits_arg =
  Arg.(
    value & opt int 32
    & info [ "min-hits" ] ~docv:"N"
        ~doc:
          "absolute floor for hit-count growth (default 32): a site only \
           flags when its hits grew by at least N on top of the relative \
           threshold, so sites the baseline never executed don't flag on \
           a handful of hits")

let report_cmd =
  Cmd.v
    (Cmd.info "report"
       ~doc:
         "render one profile: hot check sites, per-function coverage, \
          never-executed sites, optional flamegraph export")
    Term.(const run_report $ profile_pos 0 "PROFILE.json" $ top_arg $ flame_arg)

let diff_cmd =
  Cmd.v
    (Cmd.info "diff"
       ~doc:
         "flag regressions of NEW against OLD: coverage drops and \
          hit-count growth over the threshold; exit 1 when any are found"
       ~exits:
         (Cmd.Exit.info 0 ~doc:"no regressions flagged"
         :: Cmd.Exit.info 1 ~doc:"at least one regression was flagged"
         :: Cmd.Exit.info 2 ~doc:"a profile file was unreadable or invalid"
         :: Cmd.Exit.defaults))
    Term.(
      const run_diff $ profile_pos 0 "OLD.json" $ profile_pos 1 "NEW.json"
      $ threshold_arg $ min_hits_arg)

let cmd =
  Cmd.group
    (Cmd.info "mireport"
       ~doc:
         "offline reports over persistent profiles written by \
          --profile-out (mic, memsafe, mi-experiments)")
    [ report_cmd; diff_cmd ]

let () = exit (Cmd.eval' cmd)
