(** MiniC compiler driver.

    {v
    mic prog.c                 # compile + run at -O3
    mic -O0 prog.c --emit-ir   # show the naive MIR
    mic prog.c --emit-ir       # show the optimized MIR
    mic prog.c --instrument softbound --emit-ir
    v} *)

open Cmdliner
module Pipeline = Mi_passes.Pipeline
module Config = Mi_core.Config

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let level_of_string = function
  | "0" | "O0" -> Some Pipeline.O0
  | "1" | "O1" -> Some Pipeline.O1
  | "3" | "O3" -> Some Pipeline.O3
  | _ -> None

let ep_of_string = function
  | "ModuleOptimizerEarly" | "early" -> Some Pipeline.ModuleOptimizerEarly
  | "ScalarOptimizerLate" | "scalar-late" -> Some Pipeline.ScalarOptimizerLate
  | "VectorizerStart" | "vectorizer-start" -> Some Pipeline.VectorizerStart
  | _ -> None

let list_approaches () =
  List.iter
    (fun (c : Mi_core.Checker.t) ->
      Printf.printf "%-12s %s%s\n" c.Mi_core.Checker.name
        c.Mi_core.Checker.descr
        (match c.Mi_core.Checker.aliases with
        | [] -> ""
        | al -> Printf.sprintf " (aliases: %s)" (String.concat ", " al)))
    (Mi_core.Checker.all ())

(* --check-opt: comma-separated elimination passes layered onto the
   instrumentation config.  The checker's capability flags still veto
   passes it declares unsound (e.g. the temporal checker rejects all
   three), so requesting "all" is always safe. *)
let apply_check_opt spec (cfg : Config.t) : Config.t =
  List.fold_left
    (fun cfg pass ->
      match pass with
      | "" -> cfg
      | "all" -> Config.optimized_full cfg
      | "dominance" | "dom" -> { cfg with Config.opt_dominance = true }
      | "hoist" -> { cfg with Config.opt_hoist = true }
      | "static" -> { cfg with Config.opt_static = true }
      | other ->
          Printf.eprintf
            "bad --check-opt pass %s (expected dominance, hoist, static, or \
             all)\n"
            other;
          exit 2)
    cfg
    (List.map String.trim (String.split_on_char ',' spec))

let run_mic file_opt level_s instrument_s check_opt_s ep_s emit_ir no_run
    i64_ptrs diagnose list_approaches_flag ocli (fcli : Mi_fault_cli.t) =
  if list_approaches_flag then begin
    list_approaches ();
    exit 0
  end;
  let file =
    match file_opt with
    | Some f -> f
    | None ->
        prerr_endline "mic: required argument FILE.c is missing";
        exit 2
  in
  let level =
    match level_of_string level_s with
    | Some l -> l
    | None ->
        Printf.eprintf "bad -O level %s\n" level_s;
        exit 2
  in
  let ep =
    match ep_of_string ep_s with
    | Some e -> e
    | None ->
        Printf.eprintf "bad extension point %s\n" ep_s;
        exit 2
  in
  let config =
    match instrument_s with
    | "" -> None
    | s -> (
        (* any registered checker name or alias; unknown names list the
           registry rather than failing as a parse error *)
        match Config.find_approach s with
        | Some cfg -> Some cfg
        | None ->
            Printf.eprintf "unknown approach %s; registered approaches:\n" s;
            List.iter
              (fun n -> Printf.eprintf "  %s\n" n)
              (Config.known_approaches ());
            exit 2)
  in
  let config =
    match (config, check_opt_s) with
    | _, "" -> config
    | Some cfg, spec -> Some (apply_check_opt spec cfg)
    | None, _ ->
        prerr_endline "mic: --check-opt requires --instrument";
        exit 2
  in
  let src = read_file file in
  let mode = { Mi_minic.Lower.ptr_mem_as_i64 = i64_ptrs } in
  let m =
    try Mi_minic.Lower.compile ~mode ~name:(Filename.basename file) src
    with Mi_minic.Lower.Compile_error msg ->
      Printf.eprintf "%s: %s\n" file msg;
      exit 1
  in
  if diagnose then begin
    (* static hazard report (§4.7), on the unoptimized lowering *)
    match Mi_core.Diagnose.analyze_module m with
    | [] -> prerr_endline "[mic] diagnose: no instrumentation hazards found"
    | ds ->
        List.iter
          (fun d ->
            Printf.eprintf "[mic] diagnose: %s\n" (Mi_core.Diagnose.to_string d))
          ds
  end;
  let obs = Mi_obs_cli.create_obs ocli in
  ignore (Mi_obs_cli.load_profile_in ~app:"mic" ocli : Mi_obs.Profile.t option);
  let finish_obs () = Mi_obs_cli.finish ~app:"mic" ocli obs in
  let instrument =
    Option.map
      (fun cfg m ->
        ignore
          (Mi_core.Instrument.run ~obs ~faults:fcli.Mi_fault_cli.faults cfg m))
      config
  in
  Pipeline.run ~level ?instrument ~ep ~tracer:obs.Mi_obs.Obs.trace m;
  (match Mi_mir.Verify.verify_module m with
  | [] -> ()
  | errs ->
      List.iter
        (fun e ->
          Printf.eprintf "verifier: %s\n" (Mi_mir.Verify.error_to_string e))
        errs;
      exit 1);
  if emit_ir then print_string (Mi_mir.Printer.module_to_string m);
  if not no_run then begin
    let st =
      Mi_vm.State.create ~metrics:obs.Mi_obs.Obs.metrics
        ~sites:obs.Mi_obs.Obs.sites ?coverage:obs.Mi_obs.Obs.coverage ()
    in
    Mi_vm.Builtins.install st;
    let alloc_global =
      match config with
      | Some cfg ->
          Mi_runtimes.Runtimes.install cfg ~modules:[ (m, true) ] st
      | None -> None
    in
    Mi_vm.Inject.install fcli.Mi_fault_cli.faults st;
    Option.iter
      (fun budget ->
        Mi_vm.Inject.arm_deadline st
          ~deadline:(Mi_support.Mclock.deadline budget)
          ~budget)
      fcli.Mi_fault_cli.job_timeout;
    let img = Mi_vm.Interp.load ?alloc_global st [ m ] in
    let res =
      try
        Mi_obs.Trace.with_span obs.Mi_obs.Obs.trace ~cat:"mic" "execute"
          (fun () -> Mi_vm.Interp.run st img)
      with Mi_faultkit.Fault.Job_timeout budget ->
        Printf.eprintf "[mic] wall-clock budget exceeded (%gs)\n" budget;
        finish_obs ();
        exit 3
    in
    print_string res.output;
    Printf.eprintf "[mic] cycles=%d dynamic-instructions=%d\n" res.cycles
      res.steps;
    finish_obs ();
    match res.outcome with
    | Mi_vm.Interp.Exited code -> exit code
    | Mi_vm.Interp.Safety_violation { checker; reason } ->
        Printf.eprintf "[mic] %s: %s\n" checker reason;
        exit 134
    | Mi_vm.Interp.Trapped msg ->
        Printf.eprintf "[mic] trap: %s\n" msg;
        exit 139
    | Mi_vm.Interp.Exhausted budget ->
        Printf.eprintf "[mic] resource exhaustion: fuel budget of %d spent\n"
          budget;
        exit 3
  end;
  finish_obs ();
  0

let file_arg =
  (* optional at the parser level so [--list-approaches] works alone;
     run_mic enforces its presence for every other invocation *)
  Arg.(value & pos 0 (some file) None & info [] ~docv:"FILE.c")

let level_arg =
  Arg.(value & opt string "3" & info [ "O" ] ~docv:"LEVEL" ~doc:"0, 1, or 3")

let instr_arg =
  Arg.(
    value & opt string ""
    & info
        [ "instrument"; "i"; "approach" ]
        ~docv:"APPROACH"
        ~doc:
          "any registered checker (see --list-approaches), e.g. softbound, \
           lowfat, temporal")

let check_opt_arg =
  Arg.(
    value & opt string ""
    & info [ "check-opt" ] ~docv:"PASSES"
        ~doc:
          "comma-separated check-elimination passes: dominance (redundant \
           checks dominated by a wider one), hoist (loop-invariant checks \
           widened into the preheader), static (checks proven in-bounds by \
           the constraint pass), or all; requires --instrument.  Passes the \
           checker declares unsound for itself are silently skipped")

let list_approaches_arg =
  Arg.(
    value & flag
    & info [ "list-approaches" ]
        ~doc:"print the registered checker approaches and exit")

let ep_arg =
  Arg.(
    value
    & opt string "VectorizerStart"
    & info [ "ep" ] ~docv:"POINT"
        ~doc:
          "pipeline extension point: ModuleOptimizerEarly, \
           ScalarOptimizerLate, or VectorizerStart")

let emit_arg =
  Arg.(value & flag & info [ "emit-ir" ] ~doc:"print the final MIR")

let norun_arg = Arg.(value & flag & info [ "no-run" ] ~doc:"compile only")

let i64_arg =
  Arg.(
    value & flag
    & info [ "ptr-mem-as-i64" ]
        ~doc:
          "lower in-memory pointer moves through i64 (the Figure 7 \
           compiler-version behaviour)")

let diagnose_arg =
  Arg.(
    value & flag
    & info [ "diagnose" ]
        ~doc:
          "report static instrumentation hazards: int-to-pointer casts, \
           pointers stored as integers, size-zero extern arrays, \
           oversized allocations, byte-wise copy loops (§4.7)")

let cmd =
  Cmd.v
    (Cmd.info "mic" ~doc:"MiniC compiler with memory-safety instrumentation")
    Term.(
      const run_mic $ file_arg $ level_arg $ instr_arg $ check_opt_arg
      $ ep_arg $ emit_arg $ norun_arg $ i64_arg $ diagnose_arg
      $ list_approaches_arg $ Mi_obs_cli.term $ Mi_fault_cli.term)

let () = exit (Cmd.eval' cmd)
