(** Differential fuzzing driver.

    {v
    mifuzz --seeds 1..500 --mutants 1..100 -j 4 --out fuzz.json
    mifuzz --seeds 1..100 --minutes 10          # soak: keep going in blocks
    mifuzz --seeds 7..7 --repro-dir repros \
           --inject del-check                   # seeded failure + shrink
    mifuzz --corpus corpus/ --minutes 10        # evolutionary soak (resumable)
    mifuzz --corpus corpus/ --max-execs 200     # same, deterministic budget
    mifuzz --corpus corpus/ --replay            # re-run + verify every entry
    mifuzz --corpus corpus/ --replay --entry 1af0b2c9d3e4  # one entry
    v}

    Every safe seed runs the full oracle matrix (optimization levels ×
    SoftBound/Low-Fat × extension points × VM dispatch modes) and must
    match the uninstrumented [-O0] reference exactly; every mutant seed
    additionally derives one out-of-bounds mutant that both
    instrumentations must report (wide-bounds whitelist aside).  The
    JSON report is byte-identical for every [-j]. *)

open Cmdliner
module Fuzz = Mi_fuzz.Fuzz
module Harness = Mi_bench_kit.Harness
module Json = Mi_obs.Json

let range_conv : (int * int) Arg.conv =
  let parse s =
    let fail () = Error (`Msg (Printf.sprintf "bad range %S (expected A..B)" s)) in
    match String.index_opt s '.' with
    | Some i
      when i + 1 < String.length s
           && s.[i + 1] = '.'
           && i + 2 <= String.length s -> (
        let a = String.sub s 0 i in
        let b = String.sub s (i + 2) (String.length s - i - 2) in
        match (int_of_string_opt a, int_of_string_opt b) with
        | Some lo, Some hi when lo <= hi -> Ok (lo, hi)
        | _ -> fail ())
    | _ -> (
        (* a single seed is the range N..N *)
        match int_of_string_opt s with Some n -> Ok (n, n) | None -> fail ())
  in
  Arg.conv (parse, fun ppf (a, b) -> Format.fprintf ppf "%d..%d" a b)

let seeds_arg =
  Arg.(
    value
    & opt range_conv (1, 100)
    & info [ "seeds" ] ~docv:"A..B"
        ~doc:"Safe seed block (inclusive); each seed is one generated program.")

let mutants_arg =
  Arg.(
    value
    & opt (some range_conv) None
    & info [ "mutants" ] ~docv:"A..B"
        ~doc:
          "Seed block to derive unsafe mutants from (default: the first \
           fifth of $(b,--seeds)).  Pass an empty share by naming a range \
           outside the seed block if undesired.")

let jobs_arg =
  Arg.(
    value
    & opt int (Harness.default_jobs ())
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Worker domains (default: the recognized core count).  The \
           report is byte-identical for every value.")

let minutes_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "minutes" ] ~docv:"M"
        ~doc:
          "Soak mode: after the given block finishes, keep fuzzing \
           subsequent same-sized seed blocks until M minutes have \
           elapsed.")

let out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "out" ] ~docv:"FILE"
        ~doc:"Write the campaign report as JSON (deterministic bytes).")

let repro_dir_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "repro-dir" ] ~docv:"DIR"
        ~doc:
          "Shrink each failing case and emit the minimized translation \
           units plus INFO.txt under DIR/<slug>/.")

let max_shrinks_arg =
  Arg.(
    value & opt int 5
    & info [ "max-shrinks" ] ~docv:"N"
        ~doc:"Cap on shrunk repros emitted per campaign (default 5).")

let corpus_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "corpus" ] ~docv:"DIR"
        ~doc:
          "Coverage-guided mode: evolve a persistent corpus under DIR \
           (created if needed; resumes if it exists).  Combine with \
           $(b,--minutes) or $(b,--max-execs) for a soak, or with \
           $(b,--replay) to re-verify the stored entries.")

let replay_arg =
  Arg.(
    value & flag
    & info [ "replay" ]
        ~doc:
          "With $(b,--corpus): deterministically re-run every stored entry \
           through the whole oracle matrix and verify its recorded coverage \
           fingerprint.  The report is byte-identical for every $(b,-j).")

let entry_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "entry" ] ~docv:"ID"
        ~doc:
          "With $(b,--replay): restrict the replay to entries whose content \
           id starts with ID (a prefix is enough).")

let max_execs_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "max-execs" ] ~docv:"N"
        ~doc:
          "Hard cap on programs run through the matrix (safe candidates + \
           mutants).  A fixed budget makes soak results deterministic and \
           independent of wall-clock speed; combine with $(b,--minutes) to \
           stop at whichever limit is hit first.")

let main (slo, shi) mutants jobs minutes out repro_dir max_shrinks corpus
    replay entry max_execs faults =
  let width = shi - slo + 1 in
  let default_mutants lo =
    let n = width / 5 in
    if n = 0 then None else Some (lo, lo + n - 1)
  in
  let block idx =
    let lo = slo + (idx * width) in
    let hi = lo + width - 1 in
    let m =
      match (mutants, idx) with
      | Some (a, b), 0 -> Some (a, b)
      | Some (a, b), _ ->
          let mw = b - a + 1 in
          Some (a + (idx * width), a + (idx * width) + mw - 1)
      | None, _ -> default_mutants lo
    in
    Fuzz.run
      (Fuzz.campaign ~jobs ~faults ?repro_dir ~max_shrinks ?mutants:m
         ~seeds:(lo, hi) ())
  in
  let deadline =
    match minutes with
    | None -> None
    | Some m -> Some (Mi_support.Mclock.deadline (m *. 60.))
  in
  (* block-mode soak: keep fuzzing same-sized blocks while the Mclock
     deadline has not expired and the exec budget is not exhausted *)
  let rec soak idx execs acc =
    let r = block idx in
    let acc = match acc with None -> r | Some a -> Fuzz.merge a r in
    let execs = execs + r.Fuzz.r_safe_total + List.length r.Fuzz.r_mutants in
    let under_cap =
      match max_execs with Some cap -> execs < cap | None -> true
    in
    let more =
      under_cap
      &&
      match deadline with
      | Some d -> not (Mi_support.Mclock.expired d)
      | None -> max_execs <> None
    in
    if more then soak (idx + 1) execs (Some acc) else acc
  in
  let report =
    match corpus with
    | Some dir when replay -> Fuzz.replay ~jobs ~faults ?entry ~dir ()
    | Some dir ->
        Fuzz.soak_run
          (Fuzz.soak_config ~jobs ~faults ?repro_dir ~max_shrinks ?minutes
             ?max_execs ~seed_start:slo ~corpus_dir:dir ())
    | None ->
        if replay || entry <> None then begin
          prerr_endline "mifuzz: --replay/--entry require --corpus DIR";
          exit 2
        end;
        soak 0 0 None
  in
  print_string (Fuzz.render report);
  (match out with
  | None -> ()
  | Some path ->
      let s = Json.to_string (Fuzz.report_to_json report) in
      let oc = open_out path in
      output_string oc s;
      output_char oc '\n';
      close_out oc;
      Printf.printf "(wrote %s, %d bytes)\n" path (String.length s));
  if Fuzz.ok report then 0 else 1

let cmd =
  let doc =
    "differential fuzzing of the memory-safety instrumentation stack"
  in
  Cmd.v
    (Cmd.info "mifuzz" ~doc)
    Term.(
      const main $ seeds_arg $ mutants_arg $ jobs_arg $ minutes_arg $ out_arg
      $ repro_dir_arg $ max_shrinks_arg $ corpus_arg $ replay_arg $ entry_arg
      $ max_execs_arg $ Mi_fault_cli.inject_arg)

let () = exit (Cmd.eval' cmd)
