(** Run a MiniC program under every registered memory-safety checker
    and compare their verdicts — the "sanitize my program" workflow of
    the paper's artifact.

    {v
    memsafe prog.c            # verdicts from every registered checker
    memsafe --approach tp prog.c    # just the temporal checker
    memsafe --list-approaches       # what is registered
    memsafe --cases           # replay the §4 usability case studies
    memsafe --profile prog.c  # per-check-site hit/cycle profile
    memsafe --trace t.json prog.c   # Chrome trace of compile+run
    memsafe --inject fuel=1000 prog.c    # fault-injected run
    v}

    Exit status: 0 when the program runs to completion under every
    selected checker, 1 when any reports a safety violation or traps, 2
    on usage errors, 3 on resource exhaustion (fuel budget spent —
    e.g. an infinite loop — or a [--job-timeout] exceeded) without any
    violation. *)

open Cmdliner
module Config = Mi_core.Config
module Usability = Mi_bench_kit.Usability
module Fault = Mi_faultkit.Fault

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let verdict_string (r : Mi_bench_kit.Harness.run) =
  match r.outcome with
  | Mi_vm.Interp.Exited code -> Printf.sprintf "ran to completion (exit %d)" code
  | Mi_vm.Interp.Safety_violation { checker; reason } ->
      Printf.sprintf "VIOLATION reported by %s: %s" checker reason
  | Mi_vm.Interp.Trapped msg -> Printf.sprintf "VM trap: %s" msg
  | Mi_vm.Interp.Exhausted budget ->
      Printf.sprintf "RESOURCE EXHAUSTION: fuel budget of %d spent \
                      (infinite loop?)" budget

let list_approaches () =
  List.iter
    (fun (c : Mi_core.Checker.t) ->
      Printf.printf "%-12s %s%s\n" c.Mi_core.Checker.name
        c.Mi_core.Checker.descr
        (match c.Mi_core.Checker.aliases with
        | [] -> ""
        | al -> Printf.sprintf " (aliases: %s)" (String.concat ", " al)))
    (Mi_core.Checker.all ())

(* resolve the [--approach] selections against the registry; [] means
   every registered approach.  Unknown names print the registry and
   exit 2 — an unknown checker is a lookup miss, not a parse error. *)
let resolve_approaches = function
  | [] -> Config.known_approaches ()
  | names ->
      List.map
        (fun n ->
          match Config.find_approach n with
          | Some cfg -> cfg.Config.approach
          | None ->
              Printf.eprintf
                "memsafe: unknown approach %s; registered approaches:\n" n;
              List.iter
                (fun k -> Printf.eprintf "  %s\n" k)
                (Config.known_approaches ());
              exit 2)
        names

let run_file ~ocli ~(fcli : Mi_fault_cli.t) ~approaches ~optimize file =
  let code = read_file file in
  let sources = [ Mi_bench_kit.Bench.src (Filename.basename file) code ] in
  (* one observability context across every approach: counters are
     prefixed (sb./lf./tp.) and sites carry their approach, so the
     registries compose; the trace then shows each compile+run pipeline *)
  let obs = Mi_obs_cli.create_obs ocli in
  ignore (Mi_obs_cli.load_profile_in ~app:"memsafe" ocli : Mi_obs.Profile.t option);
  let bad = ref false in
  let exhausted = ref false in
  List.iter
    (fun approach ->
      let label = Config.approach_name approach in
      let cfg = Config.of_approach approach in
      (* the capability veto masks passes a checker declares unsound,
         so requesting everything is safe for every approach *)
      let cfg = if optimize then Config.optimized_full cfg else cfg in
      let setup =
        Mi_bench_kit.Harness.with_config cfg Mi_bench_kit.Harness.baseline
      in
      let r =
        Mi_obs.Trace.with_span obs.Mi_obs.Obs.trace ~cat:"memsafe" label
          (fun () ->
            Mi_bench_kit.Harness.run_sources ~obs
              ~faults:fcli.Mi_fault_cli.faults
              ?budget:fcli.Mi_fault_cli.job_timeout setup sources)
      in
      (match r.outcome with
      | Mi_vm.Interp.Exited _ -> ()
      | Mi_vm.Interp.Exhausted _ -> exhausted := true
      | Mi_vm.Interp.Safety_violation _ | Mi_vm.Interp.Trapped _ ->
          bad := true);
      Printf.printf "%-18s %s\n" (label ^ ":") (verdict_string r);
      if r.output <> "" then
        Printf.printf "%-18s %s\n" "  program output:"
          (String.concat " | " (String.split_on_char '\n' (String.trim r.output))))
    approaches;
  (* sites carry their approach, so one merged profile covers them all *)
  Mi_obs_cli.finish ~app:"memsafe" ocli obs;
  (* a violation outranks exhaustion: exit 3 only for clean-but-starved *)
  if !bad then 1 else if !exhausted then 3 else 0

let run_cases ~approaches =
  List.iter
    (fun (c : Usability.case) ->
      Printf.printf "--- %s (§%s) ---\n" c.case_name c.section;
      List.iter
        (fun approach ->
          let verdict, _ = Usability.run_case c approach in
          let expected = Usability.expected c approach in
          Printf.printf "  %-10s %-18s (expected: %s)%s\n"
            (Config.approach_name approach)
            (Usability.verdict_to_string verdict)
            (Usability.verdict_to_string expected)
            (if verdict = expected then "" else "  <-- MISMATCH"))
        approaches;
      Printf.printf "  %s\n\n" c.explain)
    (Usability.all @ Mi_bench_kit.Excluded.all);
  0

let main file cases approach_names optimize list_approaches_flag ocli fcli =
  if list_approaches_flag then begin
    list_approaches ();
    0
  end
  else
    let approaches = resolve_approaches approach_names in
    if cases then run_cases ~approaches
    else
      match file with
      | Some f when Sys.file_exists f -> (
          try run_file ~ocli ~fcli ~approaches ~optimize f
          with Fault.Job_timeout budget ->
            Printf.eprintf "memsafe: wall-clock budget exceeded (%gs)\n" budget;
            3)
      | Some f ->
          Printf.eprintf "memsafe: no such file %s\n" f;
          2
      | None ->
          prerr_endline "memsafe: expected FILE.c or --cases";
          2

let file_arg = Arg.(value & pos 0 (some string) None & info [] ~docv:"FILE.c")

let approach_arg =
  Arg.(
    value & opt_all string []
    & info [ "approach" ] ~docv:"APPROACH"
        ~doc:
          "check under this registered approach only (repeatable; default: \
           all registered approaches)")

let optimize_arg =
  Arg.(
    value & flag
    & info [ "optimize" ]
        ~doc:
          "run each checker with every check-elimination pass it supports \
           (dominance, static in-bounds, loop-invariant hoisting); verdicts \
           must match the unoptimized run")

let list_approaches_arg =
  Arg.(
    value & flag
    & info [ "list-approaches" ]
        ~doc:"print the registered checker approaches and exit")

let cases_arg =
  Arg.(
    value & flag
    & info [ "cases" ]
        ~doc:"replay the paper's §4 usability case studies instead")

let cmd =
  Cmd.v
    (Cmd.info "memsafe"
       ~doc:"check a MiniC program with every registered memory-safety checker"
       ~exits:
         (Cmd.Exit.info 0 ~doc:"ran to completion under every selected checker"
         :: Cmd.Exit.info 1 ~doc:"a safety violation or VM trap was reported"
         :: Cmd.Exit.info 3
              ~doc:
                "resource exhaustion: the fuel budget was spent (infinite \
                 loop?) or the wall-clock budget ran out, with no violation"
         :: Cmd.Exit.defaults))
    Term.(
      const main $ file_arg $ cases_arg $ approach_arg $ optimize_arg
      $ list_approaches_arg $ Mi_obs_cli.term $ Mi_fault_cli.term)

let () = exit (Cmd.eval' cmd)
