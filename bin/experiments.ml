(** Regenerate the paper's tables and figures.

    A thin loop over the experiment registry: selected experiments
    contribute their job matrices, one {!Mi_bench_kit.Harness.t} session
    runs the deduplicated union across its worker domains (with the
    instrumentation cache), and each experiment reduces the completed
    runs to a report.  Output is byte-identical for every [-j] setting.

    {v
    mi-experiments                     # everything, all cores
    mi-experiments --list              # what's in the registry
    mi-experiments fig9 table2 -j 2    # selected experiments, 2 workers
    mi-experiments --benchmark 183equake fig9
    mi-experiments --all -j 4 --json out.json
    mi-experiments --cache-dir .micache table2   # persist compiles
    v} *)

open Cmdliner
module E = Mi_bench_kit.Experiments
module Harness = Mi_bench_kit.Harness
module Json = Mi_obs.Json

(* write a report's raw series as CSV: one row per benchmark, one column
   per series *)
let write_csv dir name (report : E.report) =
  if report.E.series <> [] then begin
    if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
    let path = Filename.concat dir (name ^ ".csv") in
    let oc = open_out path in
    let labels = List.map (fun s -> s.E.label) report.E.series in
    Printf.fprintf oc "benchmark,%s\n" (String.concat "," labels);
    let keys =
      match report.E.series with
      | s :: _ -> List.map fst s.E.points
      | [] -> []
    in
    List.iter
      (fun key ->
        let cells =
          List.map
            (fun s ->
              match List.assoc_opt key s.E.points with
              | Some v -> Printf.sprintf "%.4f" v
              | None -> "")
            report.E.series
        in
        Printf.fprintf oc "%s,%s\n" key (String.concat "," cells))
      keys;
    close_out oc;
    Printf.printf "(wrote %s)\n" path
  end

(* write the collected reports as one JSON document — with the session's
   metrics snapshot alongside, so a single artifact captures results and
   the observability that produced them — then re-parse it with the
   strict parser: the output is guaranteed machine-readable or the
   command fails *)
let write_json path ~obs (reports : (string * E.report) list) =
  let doc =
    Json.Obj
      [
        ( "reports",
          Json.List
            (List.map
               (fun (name, r) ->
                 match E.report_to_json r with
                 | Json.Obj fields ->
                     Json.Obj (("name", Json.Str name) :: fields)
                 | other -> other)
               reports) );
        ("metrics", Mi_obs.Metrics.to_json obs.Mi_obs.Obs.metrics);
      ]
  in
  let s = Json.to_string doc in
  let oc = open_out path in
  output_string oc s;
  output_char oc '\n';
  close_out oc;
  match Json.of_string s with
  | _ ->
      Printf.printf "(wrote %s, %d bytes, round-trip OK)\n" path
        (String.length s)
  | exception Json.Parse_error msg ->
      Printf.eprintf "internal error: emitted JSON does not parse: %s\n" msg;
      exit 1

let list_experiments () =
  List.iter
    (fun (e : E.t) ->
      let aliases =
        match e.E.aliases with
        | [] -> ""
        | a -> Printf.sprintf " (%s)" (String.concat ", " a)
      in
      Printf.printf "%-14s%s %s\n" e.E.name aliases e.E.descr)
    (E.all ());
  0

let list_approaches () =
  List.iter
    (fun (c : Mi_core.Checker.t) ->
      Printf.printf "%-12s %s%s\n" c.Mi_core.Checker.name
        c.Mi_core.Checker.descr
        (match c.Mi_core.Checker.aliases with
        | [] -> ""
        | al -> Printf.sprintf " (aliases: %s)" (String.concat ", " al)))
    (Mi_core.Checker.all ());
  0

(* narrow the registry enumeration — and with it every registry-driven
   experiment matrix — to the selected approaches; unknown names print
   the registry and exit 2 (a lookup miss, not a parse error) *)
let restrict_approaches = function
  | [] -> ()
  | names ->
      Mi_core.Config.restrict_approaches
        (List.map
           (fun n ->
             match Mi_core.Config.find_approach n with
             | Some cfg -> cfg.Mi_core.Config.approach
             | None ->
                 Printf.eprintf
                   "mi-experiments: unknown approach %s; registered \
                    approaches:\n"
                   n;
                 List.iter
                   (fun k -> Printf.eprintf "  %s\n" k)
                   (Mi_core.Config.known_approaches ());
                 exit 2)
           names)

let run_experiments names benchmark_names approach_names csv_dir json_path
    jobs cache_dir all list list_approaches_flag ocli fcli =
  if list then list_experiments ()
  else if list_approaches_flag then list_approaches ()
  else begin
    restrict_approaches approach_names;
    let benchmarks =
      match benchmark_names with
      | [] -> None
      | names ->
          Some
            (List.map
               (fun n ->
                 match Mi_bench_kit.Suite.find n with
                 | Some b -> b
                 | None ->
                     Printf.eprintf "unknown benchmark %s (known: %s)\n" n
                       (String.concat ", " Mi_bench_kit.Suite.names);
                     exit 2)
               names)
    in
    let names =
      if all || names = [] then E.known_names () else names
    in
    let exit_code = ref 0 in
    let selected =
      List.filter_map
        (fun name ->
          match E.find name with
          | Some e -> Some (name, e)
          | None ->
              Printf.eprintf "unknown experiment %s (known: %s)\n" name
                (String.concat ", " (E.known_names ()));
              exit_code := 2;
              None)
        names
    in
    ignore
      (Mi_obs_cli.load_profile_in ~app:"mi-experiments" ocli
        : Mi_obs.Profile.t option);
    let h =
      Harness.create ~jobs ?cache_dir ~obs:(Mi_obs_cli.create_obs ocli)
        ~faults:fcli.Mi_fault_cli.faults
        ?job_timeout:fcli.Mi_fault_cli.job_timeout
        ~retries:fcli.Mi_fault_cli.retries
        ~retry_backoff_ms:fcli.Mi_fault_cli.retry_backoff_ms ()
    in
    let reports =
      try
        E.run_reports ?benchmarks ~keep_going:fcli.Mi_fault_cli.keep_going h
          (List.map snd selected)
      with Harness.Benchmark_failed (bench, reason) ->
        Printf.eprintf "mi-experiments: benchmark %s failed: %s\n" bench
          reason;
        exit 1
    in
    List.iter2
      (fun (name, _) (_, report) ->
        Printf.printf "== %s ==\n%s\n" report.E.title report.E.text;
        Option.iter (fun dir -> write_csv dir name report) csv_dir)
      selected reports;
    Option.iter
      (fun path ->
        write_json path ~obs:(Harness.obs h)
          (List.map2 (fun (n, _) (_, r) -> (n, r)) selected reports))
      json_path;
    if ocli.Mi_obs_cli.profile then begin
      let cs = Harness.cache_stats h in
      Printf.eprintf
        "[mi-experiments] jobs=%d instrumentation cache: %d hits, %d \
         misses, %d corrupt\n"
        (Harness.jobs h) cs.Harness.hits cs.Harness.misses cs.Harness.corrupt
    end;
    (* jobs that failed under --keep-going: partial results were
       reported above, but the exit status must still flag them *)
    (match Harness.failures h with
    | [] -> ()
    | _ :: _ ->
        Printf.printf "== failure manifest ==\n%s" (Harness.failure_manifest h);
        if !exit_code = 0 then exit_code := 1);
    Mi_obs_cli.finish ~app:"mi-experiments" ocli (Harness.obs h);
    !exit_code
  end

let names_arg =
  Arg.(value & pos_all string [] & info [] ~docv:"EXPERIMENT")

let bench_arg =
  Arg.(
    value
    & opt_all string []
    & info [ "benchmark"; "b" ] ~docv:"NAME"
        ~doc:"Restrict to the given benchmark(s).")

let approach_arg =
  Arg.(
    value
    & opt_all string []
    & info [ "approach" ] ~docv:"APPROACH"
        ~doc:
          "Restrict registry-driven experiment matrices to the given \
           registered checker approach(es) (repeatable; default: all — \
           see --list-approaches).")

let list_approaches_arg =
  Arg.(
    value & flag
    & info [ "list-approaches" ]
        ~doc:"List the registered checker approaches and exit.")

let csv_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "csv" ] ~docv:"DIR"
        ~doc:"Also write each experiment's raw series as DIR/<name>.csv.")

let json_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "json" ] ~docv:"FILE"
        ~doc:
          "Also write every selected report (title, rendered text, raw \
           series) as one JSON document; the file is re-parsed before \
           exit so the output is guaranteed well-formed.")

let jobs_arg =
  Arg.(
    value
    & opt int (Mi_bench_kit.Harness.default_jobs ())
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Worker domains sharding the (setup x benchmark) job matrix \
           (default: the recognized core count).  Reports are \
           byte-identical for every value.")

let cache_dir_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "cache-dir" ] ~docv:"DIR"
        ~doc:
          "Persist the instrumentation cache (compiled, instrumented and \
           optimized modules) in DIR, giving cache hits across runs.")

let all_arg =
  Arg.(
    value & flag
    & info [ "all" ]
        ~doc:
          "Run every registered experiment (the default when no \
           EXPERIMENT is named).")

let list_arg =
  Arg.(
    value & flag
    & info [ "list" ] ~doc:"List the registered experiments and exit.")

let cmd =
  let doc =
    "regenerate the tables and figures of 'Memory Safety Instrumentations \
     in Practice' (CGO 2025)"
  in
  Cmd.v
    (Cmd.info "mi-experiments" ~doc)
    Term.(
      const run_experiments $ names_arg $ bench_arg $ approach_arg $ csv_arg
      $ json_arg $ jobs_arg $ cache_dir_arg $ all_arg $ list_arg
      $ list_approaches_arg $ Mi_obs_cli.term $ Mi_fault_cli.term)

(* the fuzz experiment lives outside mi_bench_kit (the fuzz library
   depends on the bench kit, not vice versa) and registers here *)
let () = Mi_fuzz.Fuzz.register_experiment ()
let () = Mi_fuzz.Fuzz.register_soak_experiment ()
let () = Mi_server.Serve_exp.register_experiment ()
let () = exit (Cmd.eval' cmd)
