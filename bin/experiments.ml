(** Regenerate the paper's tables and figures.

    {v
    mi-experiments                 # everything
    mi-experiments fig9 table2    # selected experiments
    mi-experiments --benchmark 183equake fig9
    mi-experiments --json out.json table2
    v} *)

open Cmdliner
module E = Mi_bench_kit.Experiments
module Json = Mi_obs.Json

(* write a report's raw series as CSV: one row per benchmark, one column
   per series *)
let write_csv dir name (report : E.report) =
  if report.E.series <> [] then begin
    if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
    let path = Filename.concat dir (name ^ ".csv") in
    let oc = open_out path in
    let labels = List.map (fun s -> s.E.label) report.E.series in
    Printf.fprintf oc "benchmark,%s\n" (String.concat "," labels);
    let keys =
      match report.E.series with
      | s :: _ -> List.map fst s.E.points
      | [] -> []
    in
    List.iter
      (fun key ->
        let cells =
          List.map
            (fun s ->
              match List.assoc_opt key s.E.points with
              | Some v -> Printf.sprintf "%.4f" v
              | None -> "")
            report.E.series
        in
        Printf.fprintf oc "%s,%s\n" key (String.concat "," cells))
      keys;
    close_out oc;
    Printf.printf "(wrote %s)\n" path
  end

(* write the collected reports as one JSON document, then re-parse it
   with the strict parser: the output is guaranteed machine-readable or
   the command fails *)
let write_json path (reports : (string * E.report) list) =
  let doc =
    Json.Obj
      [
        ( "reports",
          Json.List
            (List.map
               (fun (name, r) ->
                 match E.report_to_json r with
                 | Json.Obj fields ->
                     Json.Obj (("name", Json.Str name) :: fields)
                 | other -> other)
               reports) );
      ]
  in
  let s = Json.to_string doc in
  let oc = open_out path in
  output_string oc s;
  output_char oc '\n';
  close_out oc;
  match Json.of_string s with
  | _ ->
      Printf.printf "(wrote %s, %d bytes, round-trip OK)\n" path
        (String.length s)
  | exception Json.Parse_error msg ->
      Printf.eprintf "internal error: emitted JSON does not parse: %s\n" msg;
      exit 1

let run_experiments names benchmark_names csv_dir json_path =
  let benchmarks =
    match benchmark_names with
    | [] -> None
    | names ->
        Some
          (List.map
             (fun n ->
               match Mi_bench_kit.Suite.find n with
               | Some b -> b
               | None ->
                   Printf.eprintf "unknown benchmark %s (known: %s)\n" n
                     (String.concat ", " Mi_bench_kit.Suite.names);
                   exit 2)
             names)
  in
  let names = if names = [] then E.known_names else names in
  let exit_code = ref 0 in
  let collected = ref [] in
  List.iter
    (fun name ->
      match E.by_name name with
      | None ->
          Printf.eprintf "unknown experiment %s (known: %s)\n" name
            (String.concat ", " E.known_names);
          exit_code := 2
      | Some f ->
          let report =
            match benchmarks with
            | Some bs -> f ~benchmarks:bs ()
            | None -> f ()
          in
          Printf.printf "== %s ==\n%s\n" report.E.title report.E.text;
          collected := (name, report) :: !collected;
          Option.iter (fun dir -> write_csv dir name report) csv_dir)
    names;
  Option.iter (fun path -> write_json path (List.rev !collected)) json_path;
  !exit_code

let names_arg =
  Arg.(value & pos_all string [] & info [] ~docv:"EXPERIMENT")

let bench_arg =
  Arg.(
    value
    & opt_all string []
    & info [ "benchmark"; "b" ] ~docv:"NAME"
        ~doc:"Restrict to the given benchmark(s).")

let csv_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "csv" ] ~docv:"DIR"
        ~doc:"Also write each experiment's raw series as DIR/<name>.csv.")

let json_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "json" ] ~docv:"FILE"
        ~doc:
          "Also write every selected report (title, rendered text, raw \
           series) as one JSON document; the file is re-parsed before \
           exit so the output is guaranteed well-formed.")

let cmd =
  let doc =
    "regenerate the tables and figures of 'Memory Safety Instrumentations \
     in Practice' (CGO 2025)"
  in
  Cmd.v
    (Cmd.info "mi-experiments" ~doc)
    Term.(const run_experiments $ names_arg $ bench_arg $ csv_arg $ json_arg)

let () = exit (Cmd.eval' cmd)
