(** mi-serve: the instrumentation service and its load generator.

    {v
    mi-serve --socket /tmp/mi.sock --workers 4 --queue 16   # daemon
    mi-serve --socket /tmp/mi.sock --drive --seeds 1..50 \
             -j 4 --burst 4 --shutdown                      # load + verify
    mi-serve --socket /tmp/mi.sock --workers 4 \
             --inject crash=fuzz-7,corrupt-cache=bitflip    # chaos mode
    v}

    The daemon serves compile/instrument/run requests over a
    Unix-domain socket (protocol: [Mi_server.Proto]); the drive mode
    replays a fuzz-generated job matrix against a running daemon and
    asserts byte-identity with the local batch harness.

    Exit codes — daemon: 0 after a clean [shutdown] drain.  Drive: 0
    when every request was answered and matched, 1 on any drop,
    mismatch or protocol error. *)

open Cmdliner
module Server = Mi_server.Server
module Drive = Mi_server.Drive

let range_conv : (int * int) Arg.conv =
  let parse s =
    let fail () =
      Error (`Msg (Printf.sprintf "bad range %S (expected A..B)" s))
    in
    match String.index_opt s '.' with
    | Some i when i + 1 < String.length s && s.[i + 1] = '.' -> (
        let a = String.sub s 0 i in
        let b = String.sub s (i + 2) (String.length s - i - 2) in
        match (int_of_string_opt a, int_of_string_opt b) with
        | Some lo, Some hi when lo <= hi -> Ok (lo, hi)
        | _ -> fail ())
    | _ -> (
        match int_of_string_opt s with Some n -> Ok (n, n) | None -> fail ())
  in
  Arg.conv (parse, fun ppf (a, b) -> Format.fprintf ppf "%d..%d" a b)

let socket_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "socket"; "s" ] ~docv:"PATH"
        ~doc:"Unix-domain socket path the daemon binds (or drive connects to).")

let drive_arg =
  Arg.(
    value & flag
    & info [ "drive" ]
        ~doc:
          "Load-generator mode: connect to a running daemon, replay the \
           fuzz job matrix concurrently, verify byte-identity against \
           the local batch harness.")

let workers_arg =
  Arg.(
    value & opt int 2
    & info [ "workers" ] ~docv:"N"
        ~doc:"Worker domains executing requests (daemon mode, default 2).")

let queue_arg =
  Arg.(
    value & opt int 16
    & info [ "queue" ] ~docv:"N"
        ~doc:
          "Admission bound on queued requests (daemon mode, default 16); \
           a full queue answers with a typed overloaded reply instead of \
           queueing without bound.")

let cache_dir_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "cache-dir" ] ~docv:"DIR"
        ~doc:
          "Persist the shared instrumentation cache in DIR (daemon mode).")

let trip_arg =
  Arg.(
    value & opt int 3
    & info [ "trip" ] ~docv:"N"
        ~doc:
          "Circuit breaker: disable a tenant's approach after N \
           consecutive failures; other approaches keep serving \
           (daemon mode, default 3).")

let verbose_arg =
  Arg.(
    value & flag
    & info [ "verbose"; "v" ]
        ~doc:"Log worker restarts and print final accounting (daemon mode).")

let seeds_arg =
  Arg.(
    value
    & opt range_conv (1, 25)
    & info [ "seeds" ] ~docv:"A..B"
        ~doc:"Generator seed block replayed by the drive (default 1..25).")

let variants_arg =
  Arg.(
    value
    & opt (list string) [ "O0"; "O3+sb"; "O3+lf"; "O3+tp" ]
    & info [ "variants" ] ~docv:"TAGS"
        ~doc:
          "Comma-separated oracle variant tags each seed runs under \
           (drive mode).")

let conns_arg =
  Arg.(
    value & opt int 4
    & info [ "j"; "conns" ] ~docv:"N"
        ~doc:"Concurrent drive connections (default 4).")

let burst_arg =
  Arg.(
    value & opt int 4
    & info [ "burst" ] ~docv:"N"
        ~doc:
          "Pipelined in-flight requests per connection (default 4); size \
           conns x burst above the daemon's queue bound to exercise \
           backpressure.")

let tenants_arg =
  Arg.(
    value & opt int 2
    & info [ "tenants" ] ~docv:"N"
        ~doc:"Spread requests over N tenant names (default 2).")

let timeout_ms_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "timeout-ms" ] ~docv:"MS"
        ~doc:"Per-request deadline sent with every drive request.")

let verify_jobs_arg =
  Arg.(
    value
    & opt int (Mi_bench_kit.Harness.default_jobs ())
    & info [ "verify-jobs" ] ~docv:"N"
        ~doc:
          "Worker domains of the drive's local verification harness \
           (default: the recognized core count).")

let shutdown_arg =
  Arg.(
    value & flag
    & info [ "shutdown" ]
        ~doc:"Drive mode: ask the daemon to shut down after the run.")

let main socket drive workers queue cache_dir trip verbose seeds variants
    conns burst tenants timeout_ms verify_jobs shutdown
    (fcli : Mi_fault_cli.t) =
  if drive then begin
    let cfg =
      {
        (Drive.default_cfg ~socket) with
        Drive.d_seeds = seeds;
        d_variants = variants;
        d_conns = max 1 conns;
        d_burst = max 1 burst;
        d_tenants = max 1 tenants;
        d_faults = fcli.Mi_fault_cli.faults;
        d_timeout_ms = timeout_ms;
        d_verify_jobs = max 1 verify_jobs;
        d_shutdown = shutdown;
      }
    in
    if Drive.clean (Drive.run cfg) then 0 else 1
  end
  else begin
    let cfg =
      {
        (Server.default_cfg ~socket) with
        Server.workers = max 1 workers;
        queue_cap = max 1 queue;
        cache_dir;
        faults = fcli.Mi_fault_cli.faults;
        job_timeout = fcli.Mi_fault_cli.job_timeout;
        retries = fcli.Mi_fault_cli.retries;
        retry_backoff_ms = fcli.Mi_fault_cli.retry_backoff_ms;
        trip = max 1 trip;
        verbose;
      }
    in
    let fin = Server.run cfg in
    print_endline (Server.final_line fin);
    0
  end

let cmd =
  let doc =
    "memory-safety instrumentation as a service (daemon + load generator)"
  in
  Cmd.v
    (Cmd.info "mi-serve" ~doc)
    Term.(
      const main $ socket_arg $ drive_arg $ workers_arg $ queue_arg
      $ cache_dir_arg $ trip_arg $ verbose_arg $ seeds_arg $ variants_arg
      $ conns_arg $ burst_arg $ tenants_arg $ timeout_ms_arg $ verify_jobs_arg
      $ shutdown_arg $ Mi_fault_cli.term)

let () = exit (Cmd.eval' cmd)
