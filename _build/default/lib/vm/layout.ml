(** Virtual address-space layout of the VM.

    The layout mirrors Figure 3 of the paper: the low part of the address
    space is carved into low-fat regions, one per power-of-two allocation
    size from 2^4 to 2^30 bytes; stack, standard heap, and globals live at
    high addresses whose region index falls outside the low-fat range, so
    the Low-Fat runtime classifies pointers into them as non-low-fat
    ("wide bounds") exactly as the paper describes for foreign memory. *)

let page_bits = 12
let page_size = 1 lsl page_bits (* 4 KiB *)

(** Addresses below this value are never valid (null page guard). *)
let null_guard = 0x10000

(* --- Low-fat regions ------------------------------------------------- *)

(** Each low-fat region spans [2^region_bits] bytes of VA space; the
    region index is [addr lsr region_bits]. *)
let region_bits = 32

let region_span = 1 lsl region_bits

(** Smallest low-fat allocation size: 2^4 = 16 bytes. *)
let min_size_log = 4

(** Largest low-fat allocation size: 2^30 = 1 GiB.  Allocations beyond
    this fall back to the standard allocator and are unprotected — the
    429mcf case of §4.6. *)
let max_size_log = 30

(** Region index for allocation size [2^k] is [k - min_size_log + 1], so
    valid indices are 1 .. 27. *)
let region_of_size_log k = k - min_size_log + 1

let min_region = region_of_size_log min_size_log
let max_region = region_of_size_log max_size_log

(** Allocation size served by region [r] (for [min_region <= r <=
    max_region]). *)
let size_of_region r = 1 lsl (r + min_size_log - 1)

let region_index addr = addr lsr region_bits

let is_low_fat addr =
  let r = region_index addr in
  r >= min_region && r <= max_region

let region_start r = r * region_span

(* --- Conventional segments ------------------------------------------ *)

let heap_base = 0x2000_0000_0000
let heap_limit = 0x2FFF_FFFF_F000
let stack_top = 0x3000_0080_0000 (* 8 MiB conventional stack *)
let stack_limit = 0x3000_0000_0000
let globals_base = 0x4000_0000_0000

(** Sentinel upper bound used for "wide bounds": every address compares
    below it. *)
let wide_bound = 0x7FFF_FFFF_FFFF

(** Sentinel base for wide bounds. *)
let wide_base = 0
