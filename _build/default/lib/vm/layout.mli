(** Virtual address-space layout of the VM, mirroring Figure 3 of the
    paper: the low part is carved into low-fat regions, one per
    power-of-two size class from 2^4 to 2^30 bytes; stack, standard heap,
    and globals live at high addresses whose region index falls outside
    the low-fat range (non-low-fat pointers get wide bounds). *)

val page_bits : int
val page_size : int

val null_guard : int
(** Addresses below this value are never valid. *)

(** {1 Low-fat regions} *)

val region_bits : int
(** Each region spans [2^region_bits] bytes of VA space. *)

val region_span : int

val min_size_log : int
(** Smallest class: 2^4 = 16 bytes. *)

val max_size_log : int
(** Largest class: 2^30 = 1 GiB; larger allocations fall back to the
    standard allocator (§4.6, the 429mcf case). *)

val region_of_size_log : int -> int
val min_region : int
val max_region : int

val size_of_region : int -> int
(** Allocation size served by a region index in
    [min_region .. max_region]. *)

val region_index : int -> int
val is_low_fat : int -> bool
val region_start : int -> int

(** {1 Conventional segments} *)

val heap_base : int
val heap_limit : int
val stack_top : int
val stack_limit : int
val globals_base : int

(** {1 Wide-bounds sentinels} *)

val wide_bound : int
(** Upper bound every address compares below ("wide bounds"). *)

val wide_base : int
