lib/vm/interp.mli: Irmod Mi_mir State
