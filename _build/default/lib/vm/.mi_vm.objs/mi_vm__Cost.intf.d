lib/vm/cost.mli:
