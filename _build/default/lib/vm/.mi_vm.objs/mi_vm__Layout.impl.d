lib/vm/layout.ml:
