lib/vm/layout.mli:
