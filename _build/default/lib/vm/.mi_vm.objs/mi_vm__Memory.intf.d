lib/vm/memory.mli: Bytes Hashtbl
