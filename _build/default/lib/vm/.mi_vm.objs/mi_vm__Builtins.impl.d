lib/vm/builtins.ml: Array Buffer Char Cost Hashtbl Memory Mi_support Printf State String
