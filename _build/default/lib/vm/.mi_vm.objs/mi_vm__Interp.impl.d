lib/vm/interp.ml: Array Block Cost Eval Float Func Hashtbl Instr Int64 Irmod Layout List Memory Mi_mir Mi_support Option Printf State Ty Value
