lib/vm/cost.ml:
