lib/vm/state.ml: Buffer Cost Hashtbl Layout List Memory Mi_support Printf
