(** VM implementations of the C-library subset the benchmarks use.

    These model the *uninstrumented* standard library of the paper's setup:
    their internal accesses are never checked, exactly like calls into a
    precompiled libc.  The SoftBound configuration replaces some of them
    with metadata-maintaining wrappers (see {!Mi_softbound.Runtime}). *)

open State

let i = function Some (I x) -> x | _ -> invalid_arg "expected int result"
let _ = i

let arg_i args k = as_int args.(k)
let arg_f args k = as_float args.(k)

let install (st : State.t) : unit =
  let reg = register_builtin st in
  let c = st.cost in

  (* --- allocation -------------------------------------------------- *)
  reg "malloc" (fun st args -> Some (I (st.malloc_hook st (arg_i args 0))));
  reg "calloc" (fun st args ->
      let n = arg_i args 0 and sz = arg_i args 1 in
      let bytes = n * sz in
      let a = st.malloc_hook st bytes in
      Memory.fill st.mem ~dst:a ~byte:0 bytes;
      charge st (Cost.memop_cost c bytes);
      Some (I a));
  reg "realloc" (fun st args ->
      let old = arg_i args 0 and n = arg_i args 1 in
      if old = 0 then Some (I (st.malloc_hook st n))
      else begin
        let old_sz =
          match Hashtbl.find_opt st.alloc_sizes old with
          | Some s -> s
          | None -> raise (Trap "realloc of non-allocated pointer")
        in
        let a = st.malloc_hook st n in
        let copy_n = min old_sz n in
        Memory.copy st.mem ~dst:a ~src:old copy_n;
        charge st (Cost.memop_cost c copy_n);
        st.free_hook st old;
        Some (I a)
      end);
  reg "free" (fun st args ->
      st.free_hook st (arg_i args 0);
      None);

  (* --- string/memory ----------------------------------------------- *)
  reg "memcmp" (fun st args ->
      let a = arg_i args 0 and b = arg_i args 1 and n = arg_i args 2 in
      charge st (Cost.memop_cost c n);
      let rec go k =
        if k >= n then 0
        else
          let x = Memory.load8 st.mem (a + k)
          and y = Memory.load8 st.mem (b + k) in
          if x <> y then compare x y else go (k + 1)
      in
      Some (I (go 0)));
  reg "strlen" (fun st args ->
      let s = Memory.load_cstring st.mem (arg_i args 0) in
      charge st (Cost.memop_cost c (String.length s));
      Some (I (String.length s)));
  reg "strcpy" (fun st args ->
      let d = arg_i args 0 in
      let s = Memory.load_cstring st.mem (arg_i args 1) in
      charge st (Cost.memop_cost c (String.length s));
      Memory.store_cstring st.mem d s;
      Some (I d));
  reg "strncpy" (fun st args ->
      let d = arg_i args 0 and n = arg_i args 2 in
      let s = Memory.load_cstring st.mem (arg_i args 1) in
      charge st (Cost.memop_cost c n);
      let len = min (String.length s) n in
      Memory.store_bytes st.mem d (String.sub s 0 len);
      for k = len to n - 1 do
        Memory.store8 st.mem (d + k) 0
      done;
      Some (I d));
  reg "strcmp" (fun st args ->
      let a = Memory.load_cstring st.mem (arg_i args 0) in
      let b = Memory.load_cstring st.mem (arg_i args 1) in
      charge st (Cost.memop_cost c (min (String.length a) (String.length b)));
      Some (I (compare a b)));
  reg "strcat" (fun st args ->
      let d = arg_i args 0 in
      let ds = Memory.load_cstring st.mem d in
      let s = Memory.load_cstring st.mem (arg_i args 1) in
      charge st (Cost.memop_cost c (String.length s));
      Memory.store_cstring st.mem (d + String.length ds) s;
      Some (I d));
  reg "strchr" (fun st args ->
      let p = arg_i args 0 and ch = arg_i args 1 land 0xff in
      let s = Memory.load_cstring st.mem p in
      charge st (Cost.memop_cost c (String.length s));
      (match String.index_opt s (Char.chr ch) with
      | Some k -> Some (I (p + k))
      | None -> if ch = 0 then Some (I (p + String.length s)) else Some (I 0)));

  (* --- integer math ------------------------------------------------- *)
  reg "abs" (fun st args ->
      charge st c.alu;
      Some (I (abs (arg_i args 0))));
  reg "labs" (fun st args ->
      charge st c.alu;
      Some (I (abs (arg_i args 0))));

  (* --- floating point ---------------------------------------------- *)
  let f1 name fn =
    reg name (fun st args ->
        charge st (4 * c.fpu);
        Some (F (fn (arg_f args 0))))
  in
  f1 "sqrt" sqrt;
  f1 "fabs" abs_float;
  f1 "sin" sin;
  f1 "cos" cos;
  f1 "exp" exp;
  f1 "log" log;
  f1 "floor" floor;
  f1 "ceil" ceil;
  reg "pow" (fun st args ->
      charge st (8 * c.fpu);
      Some (F (arg_f args 0 ** arg_f args 1)));

  (* --- output ------------------------------------------------------- *)
  reg "print_int" (fun st args ->
      Buffer.add_string st.out (string_of_int (arg_i args 0));
      None);
  reg "print_f64" (fun st args ->
      Buffer.add_string st.out (Printf.sprintf "%.6g" (arg_f args 0));
      None);
  reg "print_str" (fun st args ->
      Buffer.add_string st.out (Memory.load_cstring st.mem (arg_i args 0));
      None);
  reg "putchar" (fun st args ->
      Buffer.add_char st.out (Char.chr (arg_i args 0 land 0xff));
      None);
  reg "print_newline" (fun st _ ->
      Buffer.add_char st.out '\n';
      None);

  (* --- deterministic "randomness" ----------------------------------- *)
  reg "mi_rand" (fun st _ ->
      charge st c.alu;
      Some (I (Mi_support.Rng.bits st.rng land 0x3FFFFFFF)));
  reg "mi_srand" (fun _ _ -> None);

  (* --- process ------------------------------------------------------ *)
  reg "exit" (fun _ args -> raise (Exit_program (arg_i args 0)));
  reg "abort" (fun _ _ -> raise (Exit_program 134));
  ()
