lib/softbound_rt/softbound_rt.mli: Mi_vm State
