lib/softbound_rt/softbound_rt.ml: Array Cost Hashtbl Layout Mi_mir Mi_vm Option Printf State
