(** C types of the MiniC frontend and their memory layout. *)

type t =
  | Cvoid
  | Cchar
  | Cshort
  | Cint
  | Clong
  | Cdouble
  | Cptr of t
  | Carr of t * int option  (** [None]: size-less [extern T a[];] *)
  | Cstruct of string

type field = { fld_name : string; fld_ty : t; fld_off : int }

type struct_layout = {
  s_name : string;
  s_fields : field list;
  s_size : int;
  s_align : int;
}

type registry = (string, struct_layout) Hashtbl.t

let create_registry () : registry = Hashtbl.create 16

exception Type_error of string

let err fmt = Printf.ksprintf (fun s -> raise (Type_error s)) fmt

let rec size_of (reg : registry) (ty : t) : int =
  match ty with
  | Cvoid -> err "sizeof(void)"
  | Cchar -> 1
  | Cshort -> 2
  | Cint -> 4
  | Clong -> 8
  | Cdouble -> 8
  | Cptr _ -> 8
  | Carr (elt, Some n) -> n * size_of reg elt
  | Carr (_, None) -> err "sizeof of size-less array"
  | Cstruct name -> (
      match Hashtbl.find_opt reg name with
      | Some s -> s.s_size
      | None -> err "sizeof of undeclared struct %s" name)

let rec align_of (reg : registry) (ty : t) : int =
  match ty with
  | Cvoid -> 1
  | Cchar -> 1
  | Cshort -> 2
  | Cint -> 4
  | Clong | Cdouble | Cptr _ -> 8
  | Carr (elt, _) -> align_of reg elt
  | Cstruct name -> (
      match Hashtbl.find_opt reg name with
      | Some s -> s.s_align
      | None -> err "align of undeclared struct %s" name)

(** Define a struct, computing field offsets with natural alignment and
    trailing padding, as on x86-64. *)
let define_struct (reg : registry) name (fields : (string * t) list) :
    struct_layout =
  if Hashtbl.mem reg name then err "struct %s redefined" name;
  let off = ref 0 in
  let align = ref 1 in
  let fs =
    List.map
      (fun (fn, ft) ->
        let a = align_of reg ft in
        align := max !align a;
        off := Mi_support.Util.align_up !off a;
        let f = { fld_name = fn; fld_ty = ft; fld_off = !off } in
        off := !off + size_of reg ft;
        f)
      fields
  in
  let size = Mi_support.Util.align_up (max !off 1) !align in
  let s = { s_name = name; s_fields = fs; s_size = size; s_align = !align } in
  Hashtbl.replace reg name s;
  s

let find_field (reg : registry) sname fname : field =
  match Hashtbl.find_opt reg sname with
  | None -> err "undeclared struct %s" sname
  | Some s -> (
      match
        List.find_opt (fun f -> String.equal f.fld_name fname) s.s_fields
      with
      | Some f -> f
      | None -> err "struct %s has no member %s" sname fname)

let is_integer = function
  | Cchar | Cshort | Cint | Clong -> true
  | _ -> false

let is_arith = function
  | Cchar | Cshort | Cint | Clong | Cdouble -> true
  | _ -> false

let is_ptr_like = function Cptr _ | Carr _ -> true | _ -> false

let pointee = function
  | Cptr t -> t
  | Carr (t, _) -> t
  | _ -> err "dereference of non-pointer"

(** Array-to-pointer decay. *)
let decay = function Carr (t, _) -> Cptr t | t -> t

(** MIR type of a scalar C type as stored in memory / registers. *)
let to_mir (ty : t) : Mi_mir.Ty.t =
  match ty with
  | Cchar -> I8
  | Cshort -> I16
  | Cint -> I32
  | Clong -> I64
  | Cdouble -> F64
  | Cptr _ | Carr _ -> Ptr
  | Cvoid -> err "mir type of void"
  | Cstruct s -> err "mir type of struct %s (aggregates live in memory)" s

(** Integer rank for the usual arithmetic conversions. *)
let rank = function
  | Cchar -> 1
  | Cshort -> 2
  | Cint -> 3
  | Clong -> 4
  | Cdouble -> 5
  | _ -> 0

let rec to_string = function
  | Cvoid -> "void"
  | Cchar -> "char"
  | Cshort -> "short"
  | Cint -> "int"
  | Clong -> "long"
  | Cdouble -> "double"
  | Cptr t -> to_string t ^ "*"
  | Carr (t, Some n) -> Printf.sprintf "%s[%d]" (to_string t) n
  | Carr (t, None) -> Printf.sprintf "%s[]" (to_string t)
  | Cstruct s -> "struct " ^ s

let equal (a : t) (b : t) = a = b
