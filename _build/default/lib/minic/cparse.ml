(** Recursive-descent parser for MiniC. *)

open Ast

exception Parse_error of pos * string

type stream = { toks : Lexer.lexed array; mutable k : int }

let fail (s : stream) msg =
  let p = s.toks.(min s.k (Array.length s.toks - 1)).Lexer.tpos in
  raise (Parse_error (p, msg))

let peek (s : stream) = s.toks.(s.k).Lexer.tok
let peek2 (s : stream) =
  if s.k + 1 < Array.length s.toks then s.toks.(s.k + 1).Lexer.tok
  else Lexer.Teof

let pos_of (s : stream) = s.toks.(s.k).Lexer.tpos
let advance (s : stream) = s.k <- s.k + 1

let eat_punct (s : stream) p =
  match peek s with
  | Lexer.Tpunct q when String.equal p q -> advance s
  | _ -> fail s (Printf.sprintf "expected '%s'" p)

let try_punct (s : stream) p =
  match peek s with
  | Lexer.Tpunct q when String.equal p q ->
      advance s;
      true
  | _ -> false

let try_kw (s : stream) k =
  match peek s with
  | Lexer.Tkw q when String.equal k q ->
      advance s;
      true
  | _ -> false

let eat_ident (s : stream) =
  match peek s with
  | Lexer.Tident id ->
      advance s;
      id
  | _ -> fail s "expected identifier"

(* --- types ----------------------------------------------------------- *)

let is_type_start (s : stream) =
  match peek s with
  | Lexer.Tkw ("void" | "char" | "short" | "int" | "long" | "double" | "struct")
    ->
      true
  | _ -> false

let parse_base_type (s : stream) : Ctypes.t =
  match peek s with
  | Lexer.Tkw "void" ->
      advance s;
      Ctypes.Cvoid
  | Lexer.Tkw "char" ->
      advance s;
      Ctypes.Cchar
  | Lexer.Tkw "short" ->
      advance s;
      Ctypes.Cshort
  | Lexer.Tkw "int" ->
      advance s;
      Ctypes.Cint
  | Lexer.Tkw "long" ->
      advance s;
      (* accept "long long" and "long int" *)
      (match peek s with
      | Lexer.Tkw "long" | Lexer.Tkw "int" -> advance s
      | _ -> ());
      Ctypes.Clong
  | Lexer.Tkw "double" ->
      advance s;
      Ctypes.Cdouble
  | Lexer.Tkw "struct" ->
      advance s;
      let name = eat_ident s in
      Ctypes.Cstruct name
  | _ -> fail s "expected type"

let parse_stars (s : stream) ty =
  let ty = ref ty in
  while try_punct s "*" do
    ty := Ctypes.Cptr !ty
  done;
  !ty

(* array suffixes: a[3][4] -> Carr (Carr (t, 4), 3) *)
let parse_array_suffix (s : stream) ty =
  let dims = ref [] in
  while try_punct s "[" do
    (match peek s with
    | Lexer.Tint n ->
        advance s;
        dims := Some n :: !dims
    | Lexer.Tpunct "]" -> dims := None :: !dims
    | _ -> fail s "expected array size or ']'");
    eat_punct s "]"
  done;
  List.fold_left (fun t d -> Ctypes.Carr (t, d)) ty !dims

(* full abstract type for casts/sizeof: base, stars, no arrays *)
let parse_abstract_type (s : stream) : Ctypes.t =
  let t = parse_base_type s in
  parse_stars s t

(* --- expressions ----------------------------------------------------- *)

let rec parse_expr (s : stream) : expr = parse_assign s

and parse_assign (s : stream) : expr =
  let p = pos_of s in
  let lhs = parse_cond s in
  match peek s with
  | Lexer.Tpunct "=" ->
      advance s;
      { e = Eassign (lhs, parse_assign s); epos = p }
  | Lexer.Tpunct
      (("+=" | "-=" | "*=" | "/=" | "%=" | "&=" | "|=" | "^=" | "<<=" | ">>=")
       as op) ->
      advance s;
      let bop =
        match op with
        | "+=" -> Badd
        | "-=" -> Bsub
        | "*=" -> Bmul
        | "/=" -> Bdiv
        | "%=" -> Bmod
        | "&=" -> Band
        | "|=" -> Bor
        | "^=" -> Bxor
        | "<<=" -> Bshl
        | ">>=" -> Bshr
        | _ -> assert false
      in
      { e = Eopassign (bop, lhs, parse_assign s); epos = p }
  | _ -> lhs

and parse_cond (s : stream) : expr =
  let p = pos_of s in
  let c = parse_binary s 0 in
  if try_punct s "?" then begin
    let a = parse_expr s in
    eat_punct s ":";
    let b = parse_cond s in
    { e = Econd (c, a, b); epos = p }
  end
  else c

(* precedence table, lowest first *)
and binop_levels =
  [
    [ ("||", Blor) ];
    [ ("&&", Bland) ];
    [ ("|", Bor) ];
    [ ("^", Bxor) ];
    [ ("&", Band) ];
    [ ("==", Beq); ("!=", Bne) ];
    [ ("<", Blt); ("<=", Ble); (">", Bgt); (">=", Bge) ];
    [ ("<<", Bshl); (">>", Bshr) ];
    [ ("+", Badd); ("-", Bsub) ];
    [ ("*", Bmul); ("/", Bdiv); ("%", Bmod) ];
  ]

and parse_binary (s : stream) level : expr =
  if level >= List.length binop_levels then parse_unary s
  else begin
    let ops = List.nth binop_levels level in
    let p = pos_of s in
    let lhs = ref (parse_binary s (level + 1)) in
    let continue_ = ref true in
    while !continue_ do
      match peek s with
      | Lexer.Tpunct op when List.mem_assoc op ops ->
          advance s;
          let rhs = parse_binary s (level + 1) in
          lhs := { e = Ebin (List.assoc op ops, !lhs, rhs); epos = p }
      | _ -> continue_ := false
    done;
    !lhs
  end

and parse_unary (s : stream) : expr =
  let p = pos_of s in
  match peek s with
  | Lexer.Tpunct "-" ->
      advance s;
      { e = Eun (Uneg, parse_unary s); epos = p }
  | Lexer.Tpunct "!" ->
      advance s;
      { e = Eun (Unot, parse_unary s); epos = p }
  | Lexer.Tpunct "~" ->
      advance s;
      { e = Eun (Ubnot, parse_unary s); epos = p }
  | Lexer.Tpunct "*" ->
      advance s;
      { e = Ederef (parse_unary s); epos = p }
  | Lexer.Tpunct "&" ->
      advance s;
      { e = Eaddr (parse_unary s); epos = p }
  | Lexer.Tpunct "++" ->
      advance s;
      { e = Eincdec (`Pre, `Inc, parse_unary s); epos = p }
  | Lexer.Tpunct "--" ->
      advance s;
      { e = Eincdec (`Pre, `Dec, parse_unary s); epos = p }
  | Lexer.Tpunct "+" ->
      advance s;
      parse_unary s
  | Lexer.Tkw "sizeof" ->
      advance s;
      eat_punct s "(";
      if is_type_start s then begin
        let t = parse_abstract_type s in
        let t = parse_array_suffix s t in
        eat_punct s ")";
        { e = Esizeof_ty t; epos = p }
      end
      else begin
        let e = parse_expr s in
        eat_punct s ")";
        { e = Esizeof_e e; epos = p }
      end
  | Lexer.Tpunct "(" when (match peek2 s with
                          | Lexer.Tkw ("void" | "char" | "short" | "int"
                                      | "long" | "double" | "struct") ->
                              true
                          | _ -> false) ->
      advance s;
      let t = parse_abstract_type s in
      eat_punct s ")";
      { e = Ecast (t, parse_unary s); epos = p }
  | _ -> parse_postfix s

and parse_postfix (s : stream) : expr =
  let p = pos_of s in
  let e = ref (parse_primary s) in
  let continue_ = ref true in
  while !continue_ do
    match peek s with
    | Lexer.Tpunct "[" ->
        advance s;
        let i = parse_expr s in
        eat_punct s "]";
        e := { e = Eindex (!e, i); epos = p }
    | Lexer.Tpunct "." ->
        advance s;
        let f = eat_ident s in
        e := { e = Emember (!e, f); epos = p }
    | Lexer.Tpunct "->" ->
        advance s;
        let f = eat_ident s in
        e := { e = Earrow (!e, f); epos = p }
    | Lexer.Tpunct "++" ->
        advance s;
        e := { e = Eincdec (`Post, `Inc, !e); epos = p }
    | Lexer.Tpunct "--" ->
        advance s;
        e := { e = Eincdec (`Post, `Dec, !e); epos = p }
    | _ -> continue_ := false
  done;
  !e

and parse_primary (s : stream) : expr =
  let p = pos_of s in
  match peek s with
  | Lexer.Tint v ->
      advance s;
      { e = Eint v; epos = p }
  | Lexer.Tfloat v ->
      advance s;
      { e = Efloat v; epos = p }
  | Lexer.Tstr v ->
      advance s;
      { e = Estr v; epos = p }
  | Lexer.Tkw "NULL" ->
      advance s;
      { e = Ecast (Ctypes.Cptr Ctypes.Cvoid, { e = Eint 0; epos = p }); epos = p }
  | Lexer.Tident id -> (
      advance s;
      match peek s with
      | Lexer.Tpunct "(" ->
          advance s;
          let args = ref [] in
          if not (try_punct s ")") then begin
            args := [ parse_expr s ];
            while try_punct s "," do
              args := parse_expr s :: !args
            done;
            eat_punct s ")"
          end;
          { e = Ecall (id, List.rev !args); epos = p }
      | _ -> { e = Eident id; epos = p })
  | Lexer.Tpunct "(" ->
      advance s;
      let e = parse_expr s in
      eat_punct s ")";
      e
  | _ -> fail s "expected expression"

(* --- statements ------------------------------------------------------ *)

let rec parse_stmt (s : stream) : stmt =
  let p = pos_of s in
  match peek s with
  | Lexer.Tpunct "{" -> { s = Sblock (parse_block s); spos = p }
  | Lexer.Tkw "if" ->
      advance s;
      eat_punct s "(";
      let c = parse_expr s in
      eat_punct s ")";
      let thn = parse_body s in
      let els =
        if try_kw s "else" then parse_body s
        else []
      in
      { s = Sif (c, thn, els); spos = p }
  | Lexer.Tkw "while" ->
      advance s;
      eat_punct s "(";
      let c = parse_expr s in
      eat_punct s ")";
      let body = parse_body s in
      { s = Swhile (c, body); spos = p }
  | Lexer.Tkw "do" ->
      advance s;
      let body = parse_body s in
      if not (try_kw s "while") then fail s "expected 'while' after do-body";
      eat_punct s "(";
      let c = parse_expr s in
      eat_punct s ")";
      eat_punct s ";";
      { s = Sdo (body, c); spos = p }
  | Lexer.Tkw "for" ->
      advance s;
      eat_punct s "(";
      let init =
        if try_punct s ";" then None
        else if is_type_start s then begin
          let st = parse_decl_stmt s in
          Some st
        end
        else begin
          let e = parse_expr s in
          eat_punct s ";";
          Some { s = Sexpr e; spos = p }
        end
      in
      let cond = if try_punct s ";" then None
        else begin
          let e = parse_expr s in
          eat_punct s ";";
          Some e
        end
      in
      let step =
        if try_punct s ")" then None
        else begin
          let e = parse_expr s in
          eat_punct s ")";
          Some e
        end
      in
      let body = parse_body s in
      { s = Sfor (init, cond, step, body); spos = p }
  | Lexer.Tkw "return" ->
      advance s;
      if try_punct s ";" then { s = Sreturn None; spos = p }
      else begin
        let e = parse_expr s in
        eat_punct s ";";
        { s = Sreturn (Some e); spos = p }
      end
  | Lexer.Tkw "break" ->
      advance s;
      eat_punct s ";";
      { s = Sbreak; spos = p }
  | Lexer.Tkw "continue" ->
      advance s;
      eat_punct s ";";
      { s = Scontinue; spos = p }
  | _ when is_type_start s -> parse_decl_stmt s
  | _ ->
      let e = parse_expr s in
      eat_punct s ";";
      { s = Sexpr e; spos = p }

and parse_decl_stmt (s : stream) : stmt =
  let p = pos_of s in
  let base = parse_base_type s in
  let one () =
    let ty = parse_stars s base in
    let name = eat_ident s in
    let ty = parse_array_suffix s ty in
    let init =
      if try_punct s "=" then Some (parse_init s) else None
    in
    { s = Sdecl (ty, name, init); spos = p }
  in
  let first = one () in
  let rest = ref [] in
  while try_punct s "," do
    rest := one () :: !rest
  done;
  eat_punct s ";";
  if !rest = [] then first
  else { s = Sseq (first :: List.rev !rest); spos = p }

and parse_init (s : stream) : init =
  if try_punct s "{" then begin
    let items = ref [] in
    if not (try_punct s "}") then begin
      items := [ parse_init s ];
      while try_punct s "," do
        if peek s = Lexer.Tpunct "}" then () else items := parse_init s :: !items
      done;
      eat_punct s "}"
    end;
    Ilist (List.rev !items)
  end
  else Iexpr (parse_expr s)

and parse_body (s : stream) : stmt list =
  match peek s with
  | Lexer.Tpunct "{" -> parse_block s
  | _ -> [ parse_stmt s ]

and parse_block (s : stream) : stmt list =
  eat_punct s "{";
  let stmts = ref [] in
  while peek s <> Lexer.Tpunct "}" do
    stmts := parse_stmt s :: !stmts
  done;
  eat_punct s "}";
  List.rev !stmts

(* --- top-level declarations ------------------------------------------ *)

let parse_params (s : stream) : param list =
  eat_punct s "(";
  if try_punct s ")" then []
  else if peek s = Lexer.Tkw "void" && peek2 s = Lexer.Tpunct ")" then begin
    advance s;
    advance s;
    []
  end
  else begin
    let one () =
      let base = parse_base_type s in
      let ty = parse_stars s base in
      let name = eat_ident s in
      let ty = Ctypes.decay (parse_array_suffix s ty) in
      { p_name = name; p_ty = ty }
    in
    let ps = ref [ one () ] in
    while try_punct s "," do
      ps := one () :: !ps
    done;
    eat_punct s ")";
    List.rev !ps
  end

let parse_program (src : string) : program =
  let s = { toks = Array.of_list (Lexer.tokenize src); k = 0 } in
  let decls = ref [] in
  while peek s <> Lexer.Teof do
    let p = pos_of s in
    let is_extern = try_kw s "extern" in
    ignore (try_kw s "static");
    if (not is_extern) && peek s = Lexer.Tkw "struct"
       && (match peek2 s with Lexer.Tident _ -> true | _ -> false)
       && (match
             (if s.k + 2 < Array.length s.toks then s.toks.(s.k + 2).Lexer.tok
              else Lexer.Teof)
           with
          | Lexer.Tpunct "{" -> true
          | _ -> false)
    then begin
      (* struct definition *)
      advance s;
      let name = eat_ident s in
      eat_punct s "{";
      let fields = ref [] in
      while peek s <> Lexer.Tpunct "}" do
        let base = parse_base_type s in
        let field () =
          let ty = parse_stars s base in
          let fname = eat_ident s in
          let ty = parse_array_suffix s ty in
          fields := (fname, ty) :: !fields
        in
        field ();
        while try_punct s "," do
          field ()
        done;
        eat_punct s ";"
      done;
      eat_punct s "}";
      eat_punct s ";";
      decls := Dstruct (name, List.rev !fields, p) :: !decls
    end
    else begin
      let base = parse_base_type s in
      if peek s = Lexer.Tpunct ";" then begin
        (* bare "struct S;" forward declaration: ignore *)
        advance s
      end
      else begin
        let ty = parse_stars s base in
        let name = eat_ident s in
        if peek s = Lexer.Tpunct "(" then begin
          let params = parse_params s in
          if try_punct s ";" then
            decls :=
              Dproto (name, ty, List.map (fun q -> q.p_ty) params, p)
              :: !decls
          else begin
            let body = parse_block s in
            decls :=
              Dfunc
                { f_name = name; f_ret = ty; f_params = params; f_body = body; f_pos = p }
              :: !decls
          end
        end
        else begin
          (* global variable(s) *)
          let one ty name =
            let ty = parse_array_suffix s ty in
            let init = if try_punct s "=" then Some (parse_init s) else None in
            decls :=
              Dglobal
                { g_name = name; g_ty = ty; g_init = init; g_extern = is_extern; g_pos = p }
              :: !decls
          in
          one ty name;
          while try_punct s "," do
            let ty = parse_stars s base in
            let name = eat_ident s in
            one ty name
          done;
          eat_punct s ";"
        end
      end
    end
  done;
  List.rev !decls
