(** Compilation of MiniC translation units to MIR.

    One clang-like pass: locals become entry-block [alloca]s (promoted
    back to SSA by mem2reg), struct/array accesses become address
    arithmetic, implicit C conversions become casts. *)

exception Compile_error of string
(** Parse, lexical, lowering, or type errors, with source positions. *)

type mode = { ptr_mem_as_i64 : bool }
(** [ptr_mem_as_i64] reproduces the compiler-version difference of the
    paper's Figure 7: loads and stores of pointer values go through [i64]
    with [ptrtoint]/[inttoptr] around them, hiding pointer moves from the
    instrumentation and breaking SoftBound's metadata (§4.4). *)

val default_mode : mode

val builtin_sigs : (string * (Ctypes.t * Ctypes.t list)) list
(** The C-library functions every translation unit may call without
    declaring (implemented by the VM, see {!Mi_vm.Builtins}). *)

val compile : ?mode:mode -> ?name:string -> string -> Mi_mir.Irmod.t
(** Compile a MiniC source text to a MIR module.  The result passes the
    MIR verifier and the SSA dominance check.  Raises {!Compile_error}. *)
