(** Abstract syntax of MiniC, the C subset the benchmarks are written in.

    Supported: the scalar types char/short/int/long/double, pointers,
    arrays, structs; functions; globals with initializers (including
    size-less [extern T a[];] declarations — the §4.3 pattern); full
    expression syntax including casts between pointers and integers; and
    the control statements if/while/for/return/break/continue. *)

type pos = { line : int; col : int }

type binop =
  | Badd | Bsub | Bmul | Bdiv | Bmod
  | Bshl | Bshr | Band | Bor | Bxor
  | Blt | Ble | Bgt | Bge | Beq | Bne
  | Bland | Blor  (** short-circuiting *)

type unop = Uneg | Unot | Ubnot  (** -, !, ~ *)

type expr = { e : expr_kind; epos : pos }

and expr_kind =
  | Eint of int
  | Efloat of float
  | Estr of string
  | Eident of string
  | Ebin of binop * expr * expr
  | Eun of unop * expr
  | Eassign of expr * expr  (** lvalue = value *)
  | Eopassign of binop * expr * expr  (** lvalue op= value *)
  | Eincdec of [ `Pre | `Post ] * [ `Inc | `Dec ] * expr
  | Ecall of string * expr list
  | Eindex of expr * expr  (** a[i] *)
  | Emember of expr * string  (** s.f *)
  | Earrow of expr * string  (** p->f *)
  | Ederef of expr  (** *p *)
  | Eaddr of expr  (** &lv *)
  | Ecast of Ctypes.t * expr
  | Esizeof_ty of Ctypes.t
  | Esizeof_e of expr
  | Econd of expr * expr * expr  (** c ? a : b *)

type stmt = { s : stmt_kind; spos : pos }

and stmt_kind =
  | Sexpr of expr
  | Sdecl of Ctypes.t * string * init option
  | Sif of expr * stmt list * stmt list
  | Swhile of expr * stmt list
  | Sdo of stmt list * expr  (** do { ... } while (e); *)
  | Sfor of stmt option * expr option * expr option * stmt list
  | Sreturn of expr option
  | Sbreak
  | Scontinue
  | Sblock of stmt list
  | Sseq of stmt list
      (** statements without a scope of their own — used for
          multi-declarator declarations like [long i, k;] *)

and init =
  | Iexpr of expr
  | Ilist of init list  (** array/struct initializer list *)

type param = { p_name : string; p_ty : Ctypes.t }

type func = {
  f_name : string;
  f_ret : Ctypes.t;
  f_params : param list;
  f_body : stmt list;
  f_pos : pos;
}

type global = {
  g_name : string;
  g_ty : Ctypes.t;
  g_init : init option;
  g_extern : bool;
  g_pos : pos;
}

type decl =
  | Dfunc of func
  | Dproto of string * Ctypes.t * Ctypes.t list * pos
      (** name, return type, parameter types *)
  | Dglobal of global
  | Dstruct of string * (string * Ctypes.t) list * pos

type program = decl list
