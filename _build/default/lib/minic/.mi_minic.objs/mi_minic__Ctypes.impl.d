lib/minic/ctypes.ml: Hashtbl List Mi_mir Mi_support Printf String
