lib/minic/cparse.ml: Array Ast Ctypes Lexer List Printf String
