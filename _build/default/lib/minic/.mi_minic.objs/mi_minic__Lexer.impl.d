lib/minic/lexer.ml: Ast Buffer Char List Printf String
