lib/minic/lower.mli: Ctypes Mi_mir
