lib/minic/ast.ml: Ctypes
