lib/minic/lower.ml: Ast Block Builder Char Cparse Ctypes Func Hashtbl Instr Int64 Irmod Lexer List Mi_mir Printf String Ty Value
