(** Hand-written lexer for MiniC. *)

type token =
  | Tint of int
  | Tfloat of float
  | Tstr of string
  | Tident of string
  | Tkw of string  (** keyword *)
  | Tpunct of string  (** operator or punctuation *)
  | Teof

type lexed = { tok : token; tpos : Ast.pos }

exception Lex_error of Ast.pos * string

let keywords =
  [
    "void"; "char"; "short"; "int"; "long"; "double"; "struct";
    "if"; "else"; "while"; "for"; "do"; "return"; "break"; "continue";
    "sizeof"; "extern"; "static"; "NULL";
  ]

(* longest-match punctuation, ordered by length *)
let puncts3 = [ "<<="; ">>=" ]

let puncts2 =
  [
    "=="; "!="; "<="; ">="; "&&"; "||"; "<<"; ">>"; "+="; "-="; "*="; "/=";
    "%="; "&="; "|="; "^="; "++"; "--"; "->";
  ]

let puncts1 =
  [
    "+"; "-"; "*"; "/"; "%"; "="; "<"; ">"; "!"; "&"; "|"; "^"; "~"; "(";
    ")"; "{"; "}"; "["; "]"; ";"; ","; "."; "?"; ":";
  ]

let is_digit c = c >= '0' && c <= '9'
let is_hex c = is_digit c || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || is_digit c

let tokenize (src : string) : lexed list =
  let n = String.length src in
  let toks = ref [] in
  let line = ref 1 and col = ref 1 in
  let i = ref 0 in
  let pos () = { Ast.line = !line; col = !col } in
  let advance k =
    for j = !i to min (n - 1) (!i + k - 1) do
      if src.[j] = '\n' then begin
        incr line;
        col := 1
      end
      else incr col
    done;
    i := !i + k
  in
  let emit tok p = toks := { tok; tpos = p } :: !toks in
  let fail p msg = raise (Lex_error (p, msg)) in
  while !i < n do
    let c = src.[!i] in
    let p = pos () in
    if c = ' ' || c = '\t' || c = '\r' || c = '\n' then advance 1
    else if c = '/' && !i + 1 < n && src.[!i + 1] = '/' then begin
      while !i < n && src.[!i] <> '\n' do
        advance 1
      done
    end
    else if c = '/' && !i + 1 < n && src.[!i + 1] = '*' then begin
      advance 2;
      let closed = ref false in
      while (not !closed) && !i < n do
        if !i + 1 < n && src.[!i] = '*' && src.[!i + 1] = '/' then begin
          advance 2;
          closed := true
        end
        else advance 1
      done;
      if not !closed then fail p "unterminated comment"
    end
    else if is_digit c then begin
      let start = !i in
      if c = '0' && !i + 1 < n && (src.[!i + 1] = 'x' || src.[!i + 1] = 'X')
      then begin
        advance 2;
        while !i < n && is_hex src.[!i] do
          advance 1
        done;
        emit (Tint (int_of_string (String.sub src start (!i - start)))) p
      end
      else begin
        while !i < n && is_digit src.[!i] do
          advance 1
        done;
        let is_float =
          !i < n
          && (src.[!i] = '.'
             || src.[!i] = 'e' || src.[!i] = 'E')
        in
        if is_float then begin
          if !i < n && src.[!i] = '.' then begin
            advance 1;
            while !i < n && is_digit src.[!i] do
              advance 1
            done
          end;
          if !i < n && (src.[!i] = 'e' || src.[!i] = 'E') then begin
            advance 1;
            if !i < n && (src.[!i] = '+' || src.[!i] = '-') then advance 1;
            while !i < n && is_digit src.[!i] do
              advance 1
            done
          end;
          emit (Tfloat (float_of_string (String.sub src start (!i - start)))) p
        end
        else begin
          (* allow L/UL suffixes *)
          let v = int_of_string (String.sub src start (!i - start)) in
          while !i < n && (src.[!i] = 'L' || src.[!i] = 'U' || src.[!i] = 'l')
          do
            advance 1
          done;
          emit (Tint v) p
        end
      end
    end
    else if is_ident_start c then begin
      let start = !i in
      while !i < n && is_ident_char src.[!i] do
        advance 1
      done;
      let word = String.sub src start (!i - start) in
      if List.mem word keywords then emit (Tkw word) p
      else emit (Tident word) p
    end
    else if c = '"' then begin
      advance 1;
      let buf = Buffer.create 16 in
      let closed = ref false in
      while (not !closed) && !i < n do
        let ch = src.[!i] in
        if ch = '"' then begin
          advance 1;
          closed := true
        end
        else if ch = '\\' then begin
          if !i + 1 >= n then fail p "dangling escape";
          (match src.[!i + 1] with
          | 'n' -> Buffer.add_char buf '\n'
          | 't' -> Buffer.add_char buf '\t'
          | 'r' -> Buffer.add_char buf '\r'
          | '0' -> Buffer.add_char buf '\000'
          | '\\' -> Buffer.add_char buf '\\'
          | '"' -> Buffer.add_char buf '"'
          | e -> fail p (Printf.sprintf "bad escape \\%c" e));
          advance 2
        end
        else begin
          Buffer.add_char buf ch;
          advance 1
        end
      done;
      if not !closed then fail p "unterminated string";
      emit (Tstr (Buffer.contents buf)) p
    end
    else if c = '\'' then begin
      advance 1;
      if !i >= n then fail p "unterminated char literal";
      let v =
        if src.[!i] = '\\' then begin
          if !i + 1 >= n then fail p "dangling escape";
          let v =
            match src.[!i + 1] with
            | 'n' -> 10
            | 't' -> 9
            | 'r' -> 13
            | '0' -> 0
            | '\\' -> 92
            | '\'' -> 39
            | e -> fail p (Printf.sprintf "bad escape \\%c" e)
          in
          advance 2;
          v
        end
        else begin
          let v = Char.code src.[!i] in
          advance 1;
          v
        end
      in
      if !i >= n || src.[!i] <> '\'' then fail p "unterminated char literal";
      advance 1;
      emit (Tint v) p
    end
    else begin
      let try_puncts lst len =
        if !i + len <= n then
          let s = String.sub src !i len in
          if List.mem s lst then Some s else None
        else None
      in
      match try_puncts puncts3 3 with
      | Some s ->
          advance 3;
          emit (Tpunct s) p
      | None -> (
          match try_puncts puncts2 2 with
          | Some s ->
              advance 2;
              emit (Tpunct s) p
          | None -> (
              match try_puncts puncts1 1 with
              | Some s ->
                  advance 1;
                  emit (Tpunct s) p
              | None ->
                  fail p (Printf.sprintf "unexpected character %c" c)))
    end
  done;
  emit Teof (pos ());
  List.rev !toks
