(** Promotion of stack slots to SSA registers.

    An [alloca] is promotable when its address is used *only* as the
    direct address operand of loads and stores of one consistent type that
    fills the slot.  Taking the address in any other way — pointer
    arithmetic, passing it to a call (e.g. to an inserted bounds check!),
    storing it — disables promotion.  This is precisely why instrumenting
    before mem2reg (extension point ModuleOptimizerEarly) is so costly in
    Figures 12/13: every check call keeps its alloca alive and in memory.

    Standard SSA construction: phi insertion at iterated dominance
    frontiers, then a renaming walk over the dominator tree. *)

open Mi_mir
module Cfg = Mi_analysis.Cfg
module Dom = Mi_analysis.Dom

type slot_info = { sty : Ty.t; var : Value.var }

(* Find promotable allocas: map var id -> element type. *)
let promotable (f : Func.t) : slot_info Value.VTbl.t =
  let cand : (Ty.t option ref * bool ref) Value.VTbl.t =
    Value.VTbl.create 16
  in
  (* collect allocas *)
  List.iter
    (fun (b : Block.t) ->
      List.iter
        (fun (i : Instr.t) ->
          match (i.op, i.dst) with
          | Instr.Alloca { size; _ }, Some d ->
              (* only scalar-sized slots *)
              if size <= 8 then
                Value.VTbl.replace cand d (ref None, ref true)
          | _ -> ())
        b.body)
    f.blocks;
  if Value.VTbl.length cand = 0 then Value.VTbl.create 0
  else begin
    let disqualify (v : Value.t) =
      match v with
      | Value.Var x -> (
          match Value.VTbl.find_opt cand x with
          | Some (_, ok) -> ok := false
          | None -> ())
      | _ -> ()
    in
    let note_access (addr : Value.t) (ty : Ty.t) =
      match addr with
      | Value.Var x -> (
          match Value.VTbl.find_opt cand x with
          | Some (slot_ty, ok) -> (
              match !slot_ty with
              | None -> slot_ty := Some ty
              | Some t -> if not (Ty.equal t ty) then ok := false)
          | None -> ())
      | _ -> ()
    in
    List.iter
      (fun (b : Block.t) ->
        List.iter
          (fun (p : Instr.phi) ->
            List.iter (fun (_, v) -> disqualify v) p.incoming)
          b.phis;
        List.iter
          (fun (i : Instr.t) ->
            match i.op with
            | Instr.Load (ty, addr) ->
                note_access addr ty
                (* the loaded address is fine; no other operands *)
            | Instr.Store (ty, v, addr) ->
                (* storing the alloca pointer itself escapes it *)
                disqualify v;
                note_access addr ty
            | _ -> List.iter disqualify (Instr.operands i))
          b.body;
        List.iter disqualify (Instr.term_operands b.term))
      f.blocks;
    let out = Value.VTbl.create 16 in
    Value.VTbl.iter
      (fun x (slot_ty, ok) ->
        match (!slot_ty, !ok) with
        | Some ty, true ->
            (* slot must be exactly the size of the accessed type *)
            Value.VTbl.replace out x { sty = ty; var = x }
        | None, true ->
            (* never accessed: dead alloca, promote as i64 (loads of it
               are absent, stores too — it will just disappear) *)
            Value.VTbl.replace out x { sty = Ty.I64; var = x }
        | _ -> ())
      cand;
    out
  end

let run_func (f : Func.t) : bool =
  let slots = promotable f in
  if Value.VTbl.length slots = 0 then false
  else begin
    let cfg = Cfg.build f in
    let dom = Dom.build cfg in
    let df = Dom.frontiers dom in
    let nblocks = Cfg.n_blocks cfg in
    (* def blocks per slot *)
    let def_blocks : int list Value.VTbl.t = Value.VTbl.create 16 in
    Array.iteri
      (fun bi (b : Block.t) ->
        List.iter
          (fun (i : Instr.t) ->
            match i.op with
            | Instr.Store (_, _, Value.Var x) when Value.VTbl.mem slots x ->
                Value.VTbl.replace def_blocks x
                  (bi
                  :: Option.value ~default:[]
                       (Value.VTbl.find_opt def_blocks x))
            | _ -> ())
          b.body)
      cfg.Cfg.blocks;
    (* phi placement at iterated dominance frontiers *)
    (* phi_for.(bi) : slot var -> phi dst var *)
    let phi_for : (int, Value.var Value.VTbl.t) Hashtbl.t =
      Hashtbl.create 16
    in
    Value.VTbl.iter
      (fun x info ->
        let placed = Array.make nblocks false in
        let work = Queue.create () in
        List.iter
          (fun bi -> Queue.add bi work)
          (Option.value ~default:[] (Value.VTbl.find_opt def_blocks x));
        while not (Queue.is_empty work) do
          let bi = Queue.pop work in
          List.iter
            (fun fr ->
              if (not placed.(fr)) && cfg.Cfg.reachable.(fr) then begin
                placed.(fr) <- true;
                let tbl =
                  match Hashtbl.find_opt phi_for fr with
                  | Some t -> t
                  | None ->
                      let t = Value.VTbl.create 4 in
                      Hashtbl.add phi_for fr t;
                      t
                in
                Value.VTbl.replace tbl x
                  (Func.fresh_var f ~name:(x.vname ^ "m2r") info.sty);
                Queue.add fr work
              end)
            df.(bi)
        done)
      slots;
    (* renaming walk over the dominator tree *)
    let new_blocks : Block.t option array = Array.make nblocks None in
    let edge_values : (int * int * Value.t Value.VTbl.t) list ref = ref [] in
    let global_subst : Value.t Value.VTbl.t = Value.VTbl.create 32 in
    let rec rename bi (incoming : Value.t Value.VTbl.t) =
      let b = cfg.Cfg.blocks.(bi) in
      let cur = Value.VTbl.copy incoming in
      (* phis for slots in this block define new values *)
      let slot_phis =
        match Hashtbl.find_opt phi_for bi with
        | Some tbl ->
            Value.VTbl.fold
              (fun x dst acc ->
                Value.VTbl.replace cur x (Value.Var dst);
                (x, dst) :: acc)
              tbl []
        | None -> []
      in
      let subst : Value.t Value.VTbl.t = Value.VTbl.create 8 in
      let body =
        List.filter_map
          (fun (i : Instr.t) ->
            match i.op with
            | Instr.Alloca _
              when Option.fold ~none:false
                     ~some:(fun d -> Value.VTbl.mem slots d)
                     i.dst ->
                None
            | Instr.Store (_, v, Value.Var x) when Value.VTbl.mem slots x ->
                let v =
                  match v with
                  | Value.Var vx -> (
                      match Value.VTbl.find_opt subst vx with
                      | Some r -> r
                      | None -> v)
                  | _ -> v
                in
                Value.VTbl.replace cur x v;
                None
            | Instr.Load (_, Value.Var x) when Value.VTbl.mem slots x ->
                let v =
                  match Value.VTbl.find_opt cur x with
                  | Some v -> v
                  | None ->
                      (* load before any store: undef, read as zero *)
                      let info = Value.VTbl.find slots x in
                      if Ty.is_float info.sty then Value.Flt 0.0
                      else Value.Int (info.sty, 0)
                in
                Option.iter (fun d -> Value.VTbl.replace subst d v) i.dst;
                None
            | _ ->
                Some
                  (Instr.map_operands
                     (fun v ->
                       match v with
                       | Value.Var vx -> (
                           match Value.VTbl.find_opt subst vx with
                           | Some r -> r
                           | None -> v)
                       | _ -> v)
                     i))
          b.body
      in
      let term =
        Instr.map_term_operands
          (fun v ->
            match v with
            | Value.Var vx -> (
                match Value.VTbl.find_opt subst vx with
                | Some r -> r
                | None -> v)
            | _ -> v)
          b.term
      in
      (* patch successors' slot-phis with current values; also rewrite
         ordinary phi operands flowing along our edges *)
      let phis =
        b.phis
        @ List.map
            (fun (x, dst) ->
              ignore x;
              { Instr.pdst = dst; incoming = [] })
            slot_phis
      in
      new_blocks.(bi) <- Some { b with phis; body; term };
      (* record outgoing slot values on each CFG edge for a later phi
         patch; we stash them in a list *)
      List.iter
        (fun succ ->
          edge_values := (bi, succ, Value.VTbl.copy cur) :: !edge_values)
        cfg.Cfg.succs.(bi);
      (* instruction-result substitutions also apply in successors'
         ordinary phis; handle via global substitution at the end *)
      Value.VTbl.iter (fun k v -> Value.VTbl.replace global_subst k v) subst;
      List.iter (fun child -> rename child cur) dom.Dom.children.(bi)
    in
    let entry_env = Value.VTbl.create 8 in
    rename 0 entry_env;
    (* attach incoming values to the inserted slot-phis *)
    let blocks =
      Array.to_list
        (Array.mapi
           (fun bi ob ->
             match ob with
             | None -> cfg.Cfg.blocks.(bi) (* unreachable: keep as is *)
             | Some b -> b)
           new_blocks)
    in
    let find_phi_slot bi (dst : Value.var) =
      (* which slot does this phi belong to? *)
      match Hashtbl.find_opt phi_for bi with
      | None -> None
      | Some tbl ->
          Value.VTbl.fold
            (fun x d acc -> if Value.var_equal d dst then Some x else acc)
            tbl None
    in
    let blocks =
      List.mapi
        (fun bi (b : Block.t) ->
          let phis =
            List.map
              (fun (p : Instr.phi) ->
                match find_phi_slot bi p.pdst with
                | None -> p
                | Some x ->
                    let info = Value.VTbl.find slots x in
                    let incoming =
                      List.filter_map
                        (fun (pred, succ, env) ->
                          if succ = bi then
                            Some
                              ( cfg.Cfg.blocks.(pred).Block.label,
                                match Value.VTbl.find_opt env x with
                                | Some v -> v
                                | None ->
                                    if Ty.is_float info.sty then
                                      Value.Flt 0.0
                                    else Value.Int (info.sty, 0) )
                          else None)
                        !edge_values
                    in
                    { p with incoming })
              b.phis
          in
          { b with phis })
        blocks
    in
    f.blocks <- blocks;
    (* load-result substitutions may appear in phis of blocks we renamed
       before their operands got substituted locally *)
    Putils.substitute f global_subst;
    true
  end

let pass = Pass.func_pass "mem2reg" run_func
