(** Loop-invariant code motion.

    Hoists speculatable loop-invariant instructions to the loop preheader.
    Loads are hoisted only when the loop body contains no instruction that
    may write memory and no call that may abort — a check call inside the
    loop therefore pins every load, which is the mechanism behind the
    slow ModuleOptimizerEarly configurations in Figures 12/13 ("memory
    safety checks are very effective at preventing optimizations"). *)

open Mi_mir
module Cfg = Mi_analysis.Cfg
module Dom = Mi_analysis.Dom
module Loops = Mi_analysis.Loops

(* Type-based alias rule, mirroring strict aliasing / TBAA as compilers
   apply it to SPEC: [i8] (char) aliases everything; other types alias
   only themselves.  In particular [i64] stores do not pin [ptr] loads —
   which is exactly why the compiler-introduced i64 stores of pointer
   values in Fig. 7 of the paper are so treacherous. *)
let may_alias (a : Ty.t) (b : Ty.t) =
  Ty.equal a b || a = Ty.I8 || b = Ty.I8

let run_func (f : Func.t) : bool =
  let changed = ref false in
  let continue_ = ref true in
  (* repeat because hoisting can enable further hoisting *)
  let rounds = ref 0 in
  while !continue_ && !rounds < 3 do
    incr rounds;
    continue_ := false;
    let cfg = Cfg.build f in
    let dom = Dom.build cfg in
    let loops = Loops.build cfg dom in
    (* innermost loops first *)
    let by_depth =
      List.sort (fun a b -> compare b.Loops.depth a.Loops.depth) loops.loops
    in
    List.iter
      (fun (l : Loops.loop) ->
        match Loops.preheader cfg l with
        | None -> ()
        | Some ph ->
            (* always refetch blocks from the function: inner loops of
               this round may have rewritten them (the CFG shape itself
               is stable under LICM, so indices and labels stay valid) *)
            let fetch bi =
              Func.find_block_exn f cfg.Cfg.blocks.(bi).Block.label
            in
            let in_loop bi = List.mem bi l.body in
            (* variables defined inside the loop *)
            let defined_in_loop = Value.VTbl.create 32 in
            List.iter
              (fun bi ->
                List.iter
                  (fun (v : Value.var) ->
                    Value.VTbl.replace defined_in_loop v ())
                  (Block.defs (fetch bi)))
              l.body;
            (* which store types / clobber kinds occur inside the loop *)
            let stored_tys = ref [] in
            let bulk_clobber = ref false in
            let loop_aborts = ref false in
            let meta_writer = ref false in
            List.iter
              (fun bi ->
                List.iter
                  (fun (i : Instr.t) ->
                    (match i.op with
                    | Instr.Store (ty, _, _) -> stored_tys := ty :: !stored_tys
                    | Instr.Memcpy _ | Instr.Memset _ ->
                        bulk_clobber := true;
                        meta_writer := true
                    | Instr.Call (callee, _) ->
                        if Pass.Effects.may_write_call callee then
                          bulk_clobber := true;
                        (match Intrinsics.classify callee with
                        | Intrinsics.Effectful | Intrinsics.Allocating ->
                            meta_writer := true
                        | _ ->
                            if not (Intrinsics.is_builtin callee) then
                              meta_writer := true)
                    | _ -> ());
                    if Pass.Effects.may_abort i then loop_aborts := true)
                  (fetch bi).Block.body)
              l.body;
            let load_clobbered ty =
              !bulk_clobber || List.exists (may_alias ty) !stored_tys
            in
            let invariant_operand (v : Value.t) =
              match v with
              | Value.Var x -> not (Value.VTbl.mem defined_in_loop x)
              | _ -> true
            in
            let hoisted = ref [] in
            List.iter
              (fun bi ->
                if in_loop bi then begin
                  let b = fetch bi in
                  (* instructions in blocks dominating all latches execute
                     on every iteration; speculatable instructions (and
                     loads from globals, which are dereferenceable) may
                     also be hoisted out of conditional blocks *)
                  let dominates_latches =
                    List.for_all (fun lt -> Dom.dominates dom bi lt) l.latches
                  in
                  begin
                    let keep = ref [] in
                    List.iter
                      (fun (i : Instr.t) ->
                        let ops_inv =
                          List.for_all invariant_operand (Instr.operands i)
                        in
                        let can_hoist =
                          ops_inv && i.dst <> None
                          &&
                          match i.op with
                          | Instr.Load (ty, addr) ->
                              (* a load is hoistable only when nothing in
                                 the loop may clobber it (TBAA-style);
                                 loads from globals are dereferenceable
                                 and may be speculated past aborting
                                 checks, all others are pinned by them
                                 (§5.5) *)
                              let speculable =
                                match addr with
                                | Mi_mir.Value.Glob _ -> true
                                | _ -> false
                              in
                              (speculable || dominates_latches)
                              && (not (load_clobbered ty))
                              && ((not !loop_aborts) || speculable)
                          | Instr.Call (callee, _)
                            when Intrinsics.classify callee
                                 = Intrinsics.Read_meta ->
                              (* metadata loads (SoftBound trie / shadow
                                 stack reads) are plain loads at machine
                                 level: hoistable unless something in the
                                 loop writes metadata *)
                              not !meta_writer
                          | _ -> Pass.Effects.speculatable i
                        in
                        if can_hoist then begin
                          hoisted := i :: !hoisted;
                          (match i.dst with
                          | Some d ->
                              Value.VTbl.remove defined_in_loop d
                          | None -> ());
                          changed := true;
                          continue_ := true
                        end
                        else keep := i :: !keep)
                      b.Block.body;
                    Func.update_block f
                      { b with body = List.rev !keep }
                  end
                end)
              l.body;
            if !hoisted <> [] then begin
              let phb = fetch ph in
              Func.update_block f
                { phb with body = phb.Block.body @ List.rev !hoisted }
            end)
      by_depth
  done;
  !changed

let pass = Pass.func_pass "licm" run_func
