(** Shared utilities for the optimization passes. *)

open Mi_mir

(** Substitute variables in the whole function: [subst] maps a variable to
    its replacement value. *)
let substitute (f : Func.t) (subst : Value.t Value.VTbl.t) : unit =
  if Value.VTbl.length subst > 0 then begin
    (* resolve chains a -> b -> c *)
    let rec resolve v =
      match v with
      | Value.Var x -> (
          match Value.VTbl.find_opt subst x with
          | Some v' when not (Value.equal v v') -> resolve v'
          | _ -> v)
      | _ -> v
    in
    f.blocks <- List.map (Block.map_operands resolve) f.blocks
  end

(** Number of uses of each variable in the function (operands of
    instructions, phis, terminators). *)
let use_counts (f : Func.t) : int Value.VTbl.t =
  let t = Value.VTbl.create 64 in
  let note (v : Value.t) =
    match v with
    | Var x ->
        Value.VTbl.replace t x
          (1 + Option.value ~default:0 (Value.VTbl.find_opt t x))
    | _ -> ()
  in
  List.iter
    (fun (b : Block.t) ->
      List.iter
        (fun (p : Instr.phi) -> List.iter (fun (_, v) -> note v) p.incoming)
        b.phis;
      List.iter
        (fun (i : Instr.t) -> List.iter note (Instr.operands i))
        b.body;
      List.iter note (Instr.term_operands b.term))
    f.blocks;
  t

(** All variables used anywhere in the function. *)
let used_vars (f : Func.t) : unit Value.VTbl.t =
  let t = Value.VTbl.create 64 in
  let note (v : Value.t) =
    match v with Value.Var x -> Value.VTbl.replace t x () | _ -> ()
  in
  List.iter
    (fun (b : Block.t) ->
      List.iter
        (fun (p : Instr.phi) -> List.iter (fun (_, v) -> note v) p.incoming)
        b.phis;
      List.iter
        (fun (i : Instr.t) -> List.iter note (Instr.operands i))
        b.body;
      List.iter note (Instr.term_operands b.term))
    f.blocks;
  t

(** Remove blocks not reachable from entry, and drop phi incoming entries
    from removed blocks.  Returns true if anything changed. *)
let remove_unreachable (f : Func.t) : bool =
  let cfg = Mi_analysis.Cfg.build f in
  let keep = Hashtbl.create 16 in
  Array.iteri
    (fun i (b : Block.t) ->
      if cfg.Mi_analysis.Cfg.reachable.(i) then Hashtbl.add keep b.label ())
    cfg.Mi_analysis.Cfg.blocks;
  let changed = ref false in
  let blocks =
    List.filter
      (fun (b : Block.t) ->
        let k = Hashtbl.mem keep b.label in
        if not k then changed := true;
        k)
      f.blocks
  in
  let blocks =
    List.map
      (fun (b : Block.t) ->
        let phis =
          List.map
            (fun (p : Instr.phi) ->
              let incoming =
                List.filter (fun (l, _) -> Hashtbl.mem keep l) p.incoming
              in
              if List.length incoming <> List.length p.incoming then
                changed := true;
              { p with incoming })
            b.phis
        in
        { b with phis })
      blocks
  in
  if !changed then f.blocks <- blocks;
  !changed

(** A canonical structural key for pure instructions (used by GVN). *)
let op_key (op : Instr.op) : string option =
  let v = Value.to_string in
  match op with
  | Bin (o, ty, a, b) ->
      let a, b =
        (* normalize commutative operand order *)
        match o with
        | Add | Mul | And | Or | Xor ->
            if compare (v a) (v b) <= 0 then (a, b) else (b, a)
        | _ -> (a, b)
      in
      Some
        (Printf.sprintf "bin:%s:%s:%s:%s" (Instr.binop_to_string o)
           (Ty.to_string ty) (v a) (v b))
  | FBin (o, a, b) ->
      Some (Printf.sprintf "fbin:%s:%s:%s" (Instr.fbinop_to_string o) (v a) (v b))
  | Icmp (o, ty, a, b) ->
      Some
        (Printf.sprintf "icmp:%s:%s:%s:%s" (Instr.icmp_to_string o)
           (Ty.to_string ty) (v a) (v b))
  | Fcmp (o, a, b) ->
      Some (Printf.sprintf "fcmp:%s:%s:%s" (Instr.fcmp_to_string o) (v a) (v b))
  | Cast (c, t1, x, t2) ->
      Some
        (Printf.sprintf "cast:%s:%s:%s:%s" (Instr.cast_to_string c)
           (Ty.to_string t1) (v x) (Ty.to_string t2))
  | Gep (base, idxs) ->
      Some
        (Printf.sprintf "gep:%s:%s" (v base)
           (String.concat ","
              (List.map
                 (fun gi ->
                   Printf.sprintf "%d*%s" gi.Instr.stride (v gi.Instr.idx))
                 idxs)))
  | Select (ty, c, a, b) ->
      Some
        (Printf.sprintf "sel:%s:%s:%s:%s" (Ty.to_string ty) (v c) (v a) (v b))
  | Call (callee, args) when Pass.Effects.is_pure_call callee ->
      Some
        (Printf.sprintf "call:%s:%s" callee
           (String.concat "," (List.map v args)))
  | _ -> None
