(** Dead code elimination.

    Removes instructions without side effects whose results are unused —
    including calls classified [Pure]/[Read_meta]/[Allocating] by the
    intrinsics registry.  This is the pass that deletes unused metadata
    loads, reproducing the §5.4 observation that the compiler removes
    SoftBound trie loads whose bounds are never checked.  Also prunes dead
    phis. *)

open Mi_mir

let run_func (f : Func.t) : bool =
  let changed = ref false in
  let continue_ = ref true in
  while !continue_ do
    let used = Putils.used_vars f in
    let is_dead_instr (i : Instr.t) =
      match i.dst with
      | Some d ->
          (not (Value.VTbl.mem used d)) && Pass.Effects.removable i
      | None -> (
          (* result-less pure call: nothing can use it, remove it *)
          match i.op with
          | Call (callee, _) -> Pass.Effects.removable_call callee
          | _ -> false)
    in
    let round_changed = ref false in
    f.blocks <-
      List.map
        (fun (b : Block.t) ->
          let body =
            List.filter
              (fun i ->
                let dead = is_dead_instr i in
                if dead then round_changed := true;
                not dead)
              b.body
          in
          let phis =
            List.filter
              (fun (p : Instr.phi) ->
                let dead = not (Value.VTbl.mem used p.pdst) in
                if dead then round_changed := true;
                not dead)
              b.phis
          in
          { b with body; phis })
        f.blocks;
    if !round_changed then changed := true else continue_ := false
  done;
  !changed

let pass = Pass.func_pass "dce" run_func
