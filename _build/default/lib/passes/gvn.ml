(** Global value numbering (dominator-scoped CSE of pure instructions).

    Walks the dominator tree keeping a scoped table from the structural
    key of a pure instruction to the value that already computes it; a
    redundant instruction is deleted and its uses redirected.  Only
    side-effect-free, memory-independent instructions participate —
    including calls to [Pure] runtime intrinsics, so repeated Low-Fat base
    recomputations for the same pointer collapse into one. *)

open Mi_mir
module Cfg = Mi_analysis.Cfg
module Dom = Mi_analysis.Dom

let run_func (f : Func.t) : bool =
  let cfg = Cfg.build f in
  let dom = Dom.build cfg in
  let table : (string, Value.t) Hashtbl.t = Hashtbl.create 64 in
  let subst : Value.t Value.VTbl.t = Value.VTbl.create 16 in
  let changed = ref false in
  let resolve (v : Value.t) =
    match v with
    | Value.Var x -> (
        match Value.VTbl.find_opt subst x with Some r -> r | None -> v)
    | _ -> v
  in
  let rec walk bi =
    let b = cfg.Cfg.blocks.(bi) in
    let added = ref [] in
    let body =
      List.filter_map
        (fun (i : Instr.t) ->
          let i = Instr.map_operands resolve i in
          match (i.dst, Putils.op_key i.op) with
          | Some d, Some key -> (
              match Hashtbl.find_opt table key with
              | Some v ->
                  Value.VTbl.replace subst d v;
                  changed := true;
                  None
              | None ->
                  Hashtbl.add table key (Value.Var d);
                  added := key :: !added;
                  Some i)
          | _ -> Some i)
        b.body
    in
    Func.update_block f { b with body };
    List.iter walk dom.Dom.children.(bi);
    List.iter (fun k -> Hashtbl.remove table k) !added
  in
  if Array.length cfg.Cfg.blocks > 0 then walk 0;
  Putils.substitute f subst;
  !changed

let pass = Pass.func_pass "gvn" run_func
