lib/passes/mem2reg.ml: Array Block Func Hashtbl Instr List Mi_analysis Mi_mir Option Pass Putils Queue Ty Value
