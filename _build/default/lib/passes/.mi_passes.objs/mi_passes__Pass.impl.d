lib/passes/pass.ml: Func Instr Intrinsics Irmod List Mi_mir
