lib/passes/instcombine.ml: Block Eval Func Instr List Mi_mir Mi_support Pass Putils Ty Value
