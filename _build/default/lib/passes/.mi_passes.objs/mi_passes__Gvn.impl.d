lib/passes/gvn.ml: Array Func Hashtbl Instr List Mi_analysis Mi_mir Pass Putils Value
