lib/passes/dce.ml: Block Func Instr List Mi_mir Pass Putils Value
