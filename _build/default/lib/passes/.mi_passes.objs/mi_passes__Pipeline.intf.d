lib/passes/pipeline.mli: Irmod Mi_mir Pass
