lib/passes/pipeline.ml: Dce Gvn Inline Instcombine Irmod Licm Mem2reg Mi_mir Pass Simplifycfg
