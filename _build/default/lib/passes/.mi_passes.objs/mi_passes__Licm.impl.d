lib/passes/licm.ml: Array Block Func Instr Intrinsics List Mi_analysis Mi_mir Pass Ty Value
