lib/passes/putils.ml: Array Block Func Hashtbl Instr List Mi_analysis Mi_mir Option Pass Printf String Ty Value
