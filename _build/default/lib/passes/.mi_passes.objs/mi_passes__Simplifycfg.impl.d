lib/passes/simplifycfg.ml: Array Block Func Hashtbl Instr List Mi_analysis Mi_mir Pass Putils String Value
