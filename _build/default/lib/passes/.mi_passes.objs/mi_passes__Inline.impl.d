lib/passes/inline.ml: Block Func Hashtbl Instr Intrinsics Irmod List Mi_mir Option Pass Printf Putils String Value
