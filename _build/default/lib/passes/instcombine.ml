(** Instruction combining: constant folding and algebraic simplification.

    A small, always-safe subset of LLVM's InstCombine:
    - folds constant operands through arithmetic, comparisons, casts,
      selects, and geps;
    - algebraic identities (x+0, x*1, x*0, x-x, x&0, x|0, shifts by 0);
    - strength reduction (multiply by a power of two becomes a shift);
    - collapses single-incoming and all-same phis, selects with constant
      or equal arms, and gep chains with constant indices;
    - folds [gep p []] and zero-index geps to the base pointer — the
      appendix-B effect that erases intra-object overflows at IR level. *)

open Mi_mir

let as_int (v : Value.t) = match v with Value.Int (_, k) -> Some k | _ -> None

let run_func (f : Func.t) : bool =
  let changed = ref false in
  let subst : Value.t Value.VTbl.t = Value.VTbl.create 16 in
  let replace (d : Value.var option) (v : Value.t) =
    match d with
    | Some d ->
        Value.VTbl.replace subst d v;
        changed := true;
        true
    | None -> false
  in
  (* one forward pass per block; iterate at the pass-manager level *)
  let simplify_instr (i : Instr.t) : Instr.t option =
    (* returns None if the instruction should be deleted (its result was
       substituted); Some i' to keep (possibly rewritten) *)
    match i.op with
    | Bin (op, ty, a, b) -> (
        match (as_int a, as_int b) with
        | Some x, Some y -> (
            match Eval.binop op ty x y with
            | v -> if replace i.dst (Value.Int (ty, v)) then None else Some i
            | exception Eval.Div_by_zero -> Some i)
        | _, Some 0 when op = Add || op = Sub || op = Or || op = Xor ->
            if replace i.dst a then None else Some i
        | Some 0, _ when op = Add || op = Or || op = Xor ->
            if replace i.dst b then None else Some i
        | _, Some 0 when op = Shl || op = LShr || op = AShr ->
            if replace i.dst a then None else Some i
        | _, Some 1 when op = Mul || op = SDiv || op = UDiv ->
            if replace i.dst a then None else Some i
        | Some 1, _ when op = Mul ->
            if replace i.dst b then None else Some i
        | _, Some 0 when op = Mul || op = And ->
            if replace i.dst (Value.Int (ty, 0)) then None else Some i
        | Some 0, _ when op = Mul || op = And ->
            if replace i.dst (Value.Int (ty, 0)) then None else Some i
        | _, Some k when op = Mul && Mi_support.Util.is_pow2 k && k > 1 ->
            changed := true;
            Some
              {
                i with
                op =
                  Bin
                    ( Shl,
                      ty,
                      a,
                      Value.Int (ty, Mi_support.Util.log2_exact k) );
              }
        | _ ->
            if Value.equal a b && (op = Sub || op = Xor) then
              if replace i.dst (Value.Int (ty, 0)) then None else Some i
            else if Value.equal a b && (op = And || op = Or) then
              if replace i.dst a then None else Some i
            else Some i)
    | FBin (op, a, b) -> (
        match (a, b) with
        | Value.Flt x, Value.Flt y ->
            if replace i.dst (Value.Flt (Eval.fbinop op x y)) then None
            else Some i
        | _ -> Some i)
    | Icmp (op, ty, a, b) -> (
        match (as_int a, as_int b) with
        | Some x, Some y ->
            if replace i.dst (Value.Int (Ty.I1, Eval.icmp op ty x y)) then
              None
            else Some i
        | _ ->
            if Value.equal a b then
              let r =
                match op with
                | Eq | Sle | Sge | Ule | Uge -> 1
                | Ne | Slt | Sgt | Ult | Ugt -> 0
              in
              if replace i.dst (Value.Int (Ty.I1, r)) then None else Some i
            else Some i)
    | Fcmp (op, a, b) -> (
        match (a, b) with
        | Value.Flt x, Value.Flt y ->
            if replace i.dst (Value.Int (Ty.I1, Eval.fcmp op x y)) then None
            else Some i
        | _ -> Some i)
    | Cast (c, from_ty, v, to_ty) -> (
        if Ty.equal from_ty to_ty && (c = Instr.Bitcast) then
          if replace i.dst v then None else Some i
        else
          match (c, as_int v) with
          | (Zext | Sext | Trunc | IntToPtr | PtrToInt), Some k ->
              if
                replace i.dst (Value.Int (to_ty, Eval.cast_int c from_ty to_ty k))
              then None
              else Some i
          | SiToFp, Some k ->
              if replace i.dst (Value.Flt (float_of_int k)) then None
              else Some i
          | _ -> Some i)
    | Gep (base, idxs) -> (
        (* drop zero terms; fold entirely constant offsets into one term *)
        let idxs' =
          List.filter
            (fun gi ->
              not (gi.Instr.stride = 0 || as_int gi.Instr.idx = Some 0))
            idxs
        in
        let const_off =
          List.fold_left
            (fun acc gi ->
              match (acc, as_int gi.Instr.idx) with
              | Some a, Some k -> Some (a + (k * gi.Instr.stride))
              | _ -> None)
            (Some 0) idxs'
        in
        match const_off with
        | Some 0 ->
            (* gep with zero offset is the base pointer (appendix B) *)
            if replace i.dst base then None
            else if idxs' <> idxs then begin
              changed := true;
              Some { i with op = Gep (base, idxs') }
            end
            else Some i
        | Some k when List.length idxs' > 1 ->
            changed := true;
            Some
              {
                i with
                op = Gep (base, [ { stride = 1; idx = Value.Int (Ty.I64, k) } ]);
              }
        | _ ->
            if idxs' <> idxs then begin
              changed := true;
              Some { i with op = Gep (base, idxs') }
            end
            else Some i)
    | Select (_, c, a, b) -> (
        if Value.equal a b then if replace i.dst a then None else Some i
        else
          match as_int c with
          | Some 0 -> if replace i.dst b then None else Some i
          | Some _ -> if replace i.dst a then None else Some i
          | None -> Some i)
    | _ -> Some i
  in
  f.blocks <-
    List.map
      (fun (b : Block.t) ->
        (* phi simplification: single incoming, or all incoming equal *)
        let phis =
          List.filter
            (fun (p : Instr.phi) ->
              let vals = List.map snd p.incoming in
              let all_same v = List.for_all (Value.equal v) vals in
              match vals with
              | [ v ] when not (Value.equal v (Var p.pdst)) ->
                  Value.VTbl.replace subst p.pdst v;
                  changed := true;
                  false
              | v :: _
                when all_same v && not (Value.equal v (Var p.pdst)) ->
                  Value.VTbl.replace subst p.pdst v;
                  changed := true;
                  false
              | _ ->
                  (* phi where all non-self incoming agree *)
                  let non_self =
                    List.filter
                      (fun v -> not (Value.equal v (Var p.pdst)))
                      vals
                  in
                  (match non_self with
                  | v :: rest when List.for_all (Value.equal v) rest ->
                      Value.VTbl.replace subst p.pdst v;
                      changed := true;
                      false
                  | _ -> true))
            b.phis
        in
        let body = List.filter_map simplify_instr b.body in
        { b with phis; body })
      f.blocks;
  Putils.substitute f subst;
  !changed

let pass = Pass.func_pass "instcombine" run_func
