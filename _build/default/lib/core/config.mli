(** Instrumentation configuration, mirroring the MemInstrument flags of
    the paper's artifact appendix (A.6). *)

(** The two approaches the paper compares. *)
type approach = Softbound | Lowfat

type mode =
  | Full  (** witnesses + invariants + dereference checks *)
  | Geninvariants
      (** witnesses + invariants only — the "metadata" configuration of
          Figures 10/11 ([-mi-mode=geninvariants]) *)
  | Noop  (** leave the module untouched *)

type t = {
  approach : approach;
  mode : mode;
  opt_dominance : bool;
      (** dominance-based check elimination ([-mi-opt-dominance], §5.3) *)
  sb_size_zero_wide_upper : bool;
      (** wide upper bounds for size-less extern arrays
          ([-mi-sb-size-zero-wide-upper], §4.3) *)
  sb_inttoptr_wide : bool;
      (** wide instead of null bounds for int-to-pointer casts
          ([-mi-sb-inttoptr-wide-bounds], §4.4) *)
  sb_wrapper_checks : bool;
      (** safety checks inside libc wrappers; off by default for runtime
          comparability (§5.1.2) *)
  lf_stack : bool;  (** Low-Fat stack-variable protection *)
  lf_globals : bool;  (** Low-Fat global-variable protection *)
}

val softbound : t
(** The paper's SoftBound configuration basis. *)

val lowfat : t
(** The paper's Low-Fat Pointers configuration basis. *)

val of_approach : approach -> t

val optimized : t -> t
(** Enable the dominance-based check elimination (the "optimized"
    configurations of Figures 9-11). *)

val metadata_only : t -> t
(** Switch to [Geninvariants] (the "metadata" configurations of
    Figures 10/11). *)

val approach_name : approach -> string
val to_string : t -> string
