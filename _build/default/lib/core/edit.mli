(** Deferred-edit buffer for function rewriting.

    Instrumentation decides what to insert while walking the original
    function — whose instructions are addressed by [(block label,
    position)] anchors — and applies every edit in a single rebuild, so
    positions never shift underneath the walk. *)

open Mi_mir

type anchor = { ablock : string; apos : int }
(** Position of an instruction in the original (pre-edit) function. *)

type t

val create : Func.t -> t

val fresh : t -> ?name:string -> Ty.t -> Value.var
(** Allocate a fresh SSA variable in the function being edited. *)

val insert_entry : t -> Instr.t -> unit
(** Append to the instructions prepended to the entry block (executed in
    insertion order). *)

val insert_before : t -> anchor -> Instr.t -> unit
val insert_after : t -> anchor -> Instr.t -> unit

val insert_at_end : t -> string -> Instr.t -> unit
(** Insert just before the terminator of the named block. *)

val set_replacement : t -> anchor -> Instr.t -> unit
(** Replace the anchored instruction. At most one replacement per anchor. *)

val add_phi : t -> string -> Instr.phi -> unit
(** Add a phi to the named block. *)

val emit_entry : t -> ?name:string -> Ty.t -> Instr.op -> Value.t
(** [insert_entry] an instruction computing a fresh value; returns it. *)

val emit_after : t -> anchor -> ?name:string -> Ty.t -> Instr.op -> Value.t
val emit_before : t -> anchor -> ?name:string -> Ty.t -> Instr.op -> Value.t

val apply : t -> unit
(** Rebuild the function with all recorded edits applied (in place). *)
