(** Instrumentation-target discovery — the shared strategy of Table 1.

    Walking a function yields, independently of the chosen approach:
    - {e check targets}: loads and stores whose address must be validated;
    - {e invariant targets}: program points where pointers escape (stores
      of pointer values, calls with pointer arguments or results, returns
      of pointers, pointer-to-integer casts) and where the approach must
      establish or rely on its invariant;
    - {e memop targets}: [memcpy]/[memset] intrinsics that move memory
      (and possibly in-memory pointers) wholesale.

    The approach-specific lowering of these targets lives in
    {!Instrument}; approach-independent filtering (e.g. the dominance-
    based check elimination of §5.3) operates on this representation. *)

open Mi_mir

type access = Aload | Astore

type check = {
  c_anchor : Edit.anchor;
  c_ptr : Value.t;
  c_width : int;
  c_access : access;
}

(** How a call site relates to the runtime/libc world; decides protocol. *)
type call_kind =
  | Runtime_internal  (** [__mi_*]/[__sbw_*]: never instrumented *)
  | Known_alloc  (** [malloc]/[calloc]: bounds derived from arguments *)
  | Wrapped  (** libc functions with a SoftBound wrapper (Fig. 6) *)
  | Plain_builtin  (** other libc: no pointer metadata crosses the call *)
  | General  (** defined here or unknown extern: full protocol *)

type call = {
  l_anchor : Edit.anchor;
  l_callee : string;
  l_kind : call_kind;
  l_args : Value.t list;
  l_ptr_args : (int * Value.t) list;
      (** (argument index, value) of pointer-typed arguments *)
  l_has_ptr_ret : bool;
  l_dst : Value.var option;
}

type ptr_store = {
  s_anchor : Edit.anchor;
  s_value : Value.t;  (** the pointer being stored *)
  s_addr : Value.t;
}

type ptr_ret = { r_block : string; r_value : Value.t }

type ptr_escape_cast = { e_anchor : Edit.anchor; e_ptr : Value.t }
(** a [ptrtoint] cast: Low-Fat checks the pointer in-bounds here (§4.4) *)

type memop = {
  m_anchor : Edit.anchor;
  m_kind : [ `Memcpy | `Memset ];
  m_dst : Value.t;
  m_src : Value.t option;
  m_len : Value.t;
}

type t = {
  checks : check list;
  calls : call list;
  ptr_stores : ptr_store list;
  ptr_rets : ptr_ret list;
  escape_casts : ptr_escape_cast list;
  memops : memop list;
}

let classify_callee (m : Irmod.t) name : call_kind =
  if Intrinsics.is_runtime_internal name then Runtime_internal
  else if name = "malloc" || name = "calloc" then Known_alloc
  else if List.mem name Intrinsics.sb_wrapped then Wrapped
  else
    match Irmod.find_func m name with
    | Some f when not f.is_external -> General
    | _ -> if Intrinsics.is_builtin name then Plain_builtin else General

let discover (m : Irmod.t) (f : Func.t) : t =
  let checks = ref [] in
  let calls = ref [] in
  let ptr_stores = ref [] in
  let ptr_rets = ref [] in
  let escape_casts = ref [] in
  let memops = ref [] in
  List.iter
    (fun (b : Block.t) ->
      List.iteri
        (fun pos (i : Instr.t) ->
          let anchor = { Edit.ablock = b.Block.label; apos = pos } in
          match i.op with
          | Load (ty, addr) ->
              checks :=
                {
                  c_anchor = anchor;
                  c_ptr = addr;
                  c_width = Ty.size_of ty;
                  c_access = Aload;
                }
                :: !checks
          | Store (ty, v, addr) ->
              checks :=
                {
                  c_anchor = anchor;
                  c_ptr = addr;
                  c_width = Ty.size_of ty;
                  c_access = Astore;
                }
                :: !checks;
              if Ty.is_ptr ty then
                ptr_stores :=
                  { s_anchor = anchor; s_value = v; s_addr = addr }
                  :: !ptr_stores
          | Call (callee, args) ->
              let kind = classify_callee m callee in
              let ptr_args =
                List.mapi (fun k v -> (k, v)) args
                |> List.filter (fun (_, v) -> Ty.is_ptr (Value.ty_of v))
              in
              let has_ptr_ret =
                match i.dst with
                | Some d -> Ty.is_ptr d.vty
                | None -> false
              in
              if kind <> Runtime_internal then
                calls :=
                  {
                    l_anchor = anchor;
                    l_callee = callee;
                    l_kind = kind;
                    l_args = args;
                    l_ptr_args = ptr_args;
                    l_has_ptr_ret = has_ptr_ret;
                    l_dst = i.dst;
                  }
                  :: !calls
          | Cast (PtrToInt, _, v, _) ->
              escape_casts :=
                { e_anchor = anchor; e_ptr = v } :: !escape_casts
          | Memcpy (d, s, n) ->
              memops :=
                {
                  m_anchor = anchor;
                  m_kind = `Memcpy;
                  m_dst = d;
                  m_src = Some s;
                  m_len = n;
                }
                :: !memops
          | Memset (d, _, n) ->
              memops :=
                {
                  m_anchor = anchor;
                  m_kind = `Memset;
                  m_dst = d;
                  m_src = None;
                  m_len = n;
                }
                :: !memops
          | _ -> ())
        b.body;
      match b.term with
      | Instr.Ret (Some v) when Ty.is_ptr (Value.ty_of v) ->
          ptr_rets := { r_block = b.Block.label; r_value = v } :: !ptr_rets
      | _ -> ())
    f.blocks;
  {
    checks = List.rev !checks;
    calls = List.rev !calls;
    ptr_stores = List.rev !ptr_stores;
    ptr_rets = List.rev !ptr_rets;
    escape_casts = List.rev !escape_casts;
    memops = List.rev !memops;
  }

let n_checks t = List.length t.checks
