(** Instrumentation-target discovery — the shared strategy of the
    paper's Table 1, independent of the chosen approach. *)

open Mi_mir

type access = Aload | Astore

type check = {
  c_anchor : Edit.anchor;
  c_ptr : Value.t;  (** the address being dereferenced *)
  c_width : int;  (** access width in bytes *)
  c_access : access;
}
(** A load or store whose address must be validated. *)

(** How a call site relates to the runtime/libc world. *)
type call_kind =
  | Runtime_internal  (** [__mi_*]/[__sbw_*]: never instrumented *)
  | Known_alloc  (** [malloc]/[calloc]: bounds derived from arguments *)
  | Wrapped  (** libc functions with a SoftBound wrapper (Fig. 6) *)
  | Plain_builtin  (** other libc: no pointer metadata crosses the call *)
  | General  (** defined here or unknown extern: full protocol *)

type call = {
  l_anchor : Edit.anchor;
  l_callee : string;
  l_kind : call_kind;
  l_args : Value.t list;
  l_ptr_args : (int * Value.t) list;
      (** (argument index, value) of pointer-typed arguments *)
  l_has_ptr_ret : bool;
  l_dst : Value.var option;
}

type ptr_store = {
  s_anchor : Edit.anchor;
  s_value : Value.t;  (** the pointer being stored *)
  s_addr : Value.t;
}

type ptr_ret = { r_block : string; r_value : Value.t }

type ptr_escape_cast = { e_anchor : Edit.anchor; e_ptr : Value.t }
(** A [ptrtoint] cast — Low-Fat checks the pointer in-bounds here (§4.4). *)

type memop = {
  m_anchor : Edit.anchor;
  m_kind : [ `Memcpy | `Memset ];
  m_dst : Value.t;
  m_src : Value.t option;
  m_len : Value.t;
}

type t = {
  checks : check list;
  calls : call list;
  ptr_stores : ptr_store list;
  ptr_rets : ptr_ret list;
  escape_casts : ptr_escape_cast list;
  memops : memop list;
}

val classify_callee : Irmod.t -> string -> call_kind

val discover : Irmod.t -> Func.t -> t
(** Walk [f] and collect every instrumentation target of Table 1. *)

val n_checks : t -> int
