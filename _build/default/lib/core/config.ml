(** Instrumentation configuration.

    Mirrors the MemInstrument command-line flags listed in the paper's
    artifact appendix (A.6): the approach selection ([-mi-config]), the
    mode ([-mi-mode=geninvariants]), the dominance-based check elimination
    ([-mi-opt-dominance]), and the SoftBound policies for size-zero global
    declarations and integer-to-pointer casts. *)

type approach = Softbound | Lowfat

type mode =
  | Full  (** witnesses + invariants + dereference checks *)
  | Geninvariants
      (** witnesses + invariants only — the "metadata" configuration of
          Figures 10/11, measuring the cost of maintaining the approach's
          invariant without any access checks *)
  | Noop  (** leave the module untouched (baseline) *)

type t = {
  approach : approach;
  mode : mode;
  opt_dominance : bool;
      (** eliminate checks dominated by an equivalent check (§5.3) *)
  sb_size_zero_wide_upper : bool;
      (** [-mi-sb-size-zero-wide-upper]: extern globals declared without a
          size get a wide upper bound instead of null bounds (§4.3) *)
  sb_inttoptr_wide : bool;
      (** [-mi-sb-inttoptr-wide-bounds]: pointers cast from integers get
          wide bounds instead of null bounds (§4.4) *)
  sb_wrapper_checks : bool;
      (** safety checks inside C-library wrappers; disabled by default for
          runtime comparability (§5.1.2) *)
  lf_stack : bool;  (** Low-Fat stack-variable protection [12] *)
  lf_globals : bool;  (** Low-Fat global-variable protection [11] *)
}

(** The paper's SoftBound configuration basis (appendix A.6). *)
let softbound =
  {
    approach = Softbound;
    mode = Full;
    opt_dominance = false;
    sb_size_zero_wide_upper = true;
    sb_inttoptr_wide = true;
    sb_wrapper_checks = false;
    lf_stack = false;
    lf_globals = false;
  }

(** The paper's Low-Fat Pointers configuration basis (appendix A.6). *)
let lowfat =
  {
    approach = Lowfat;
    mode = Full;
    opt_dominance = false;
    sb_size_zero_wide_upper = true;
    sb_inttoptr_wide = true;
    sb_wrapper_checks = false;
    lf_stack = true;
    lf_globals = true;
  }

let of_approach = function Softbound -> softbound | Lowfat -> lowfat

(** The "optimized" configurations of Figures 9-11. *)
let optimized c = { c with opt_dominance = true }

(** The "metadata" configurations of Figures 10/11. *)
let metadata_only c = { c with mode = Geninvariants }

let approach_name = function Softbound -> "softbound" | Lowfat -> "lowfat"

let to_string c =
  String.concat ""
    [
      approach_name c.approach;
      (match c.mode with
      | Full -> ""
      | Geninvariants -> "+geninvariants"
      | Noop -> "+noop");
      (if c.opt_dominance then "+domopt" else "");
      (if c.sb_size_zero_wide_upper then "" else "+sz0null");
      (if c.sb_inttoptr_wide then "" else "+i2pnull");
      (if c.sb_wrapper_checks then "+wrapchecks" else "");
      (match c.approach with
      | Lowfat ->
          (if c.lf_stack then "" else "+nostack")
          ^ if c.lf_globals then "" else "+noglobals"
      | Softbound -> "");
    ]
