(** Static diagnostics for instrumentation hazards (§4.7).

    The paper concludes that some of the usability problems can be flagged
    to the tool user before running anything: integer-to-pointer casts
    "can be detected statically and reported ... as a potential reason for
    false positives or negatives", while byte-wise copies are "hard to
    find automatically" — for those we offer a best-effort loop heuristic.

    Detected hazards:
    - [Inttoptr_cast]: pointers created from integers lose SoftBound
      metadata (wide or null bounds, §4.4) and void Low-Fat's in-bounds
      reasoning;
    - [Ptr_stored_as_int]: a [ptrtoint] result written to memory as an
      integer — the Figure 7 pattern that silently bypasses the trie;
    - [Size_zero_extern]: a size-less extern array declaration (§4.3)
      forces wide or null bounds under SoftBound;
    - [Oversized_alloc]: a constant allocation larger than the largest
      low-fat region falls back to the standard allocator (§4.6, the
      429mcf case);
    - [Bytewise_copy_loop]: a loop that both loads and stores i8 values —
      possibly a byte-wise object copy that desynchronizes SoftBound's
      metadata (§4.5). *)

open Mi_mir

type kind =
  | Inttoptr_cast
  | Ptr_stored_as_int
  | Size_zero_extern
  | Oversized_alloc
  | Bytewise_copy_loop

type t = {
  d_kind : kind;
  d_where : string;  (** "function:block" or "global @name" *)
  d_message : string;
}

let kind_name = function
  | Inttoptr_cast -> "inttoptr-cast"
  | Ptr_stored_as_int -> "ptr-stored-as-int"
  | Size_zero_extern -> "size-zero-extern"
  | Oversized_alloc -> "oversized-alloc"
  | Bytewise_copy_loop -> "bytewise-copy-loop"

let to_string d =
  Printf.sprintf "[%s] %s: %s" (kind_name d.d_kind) d.d_where d.d_message

let max_lowfat_size = 1 lsl 30

let analyze_func (f : Func.t) : t list =
  let out = ref [] in
  let add kind where fmt =
    Printf.ksprintf
      (fun msg -> out := { d_kind = kind; d_where = where; d_message = msg } :: !out)
      fmt
  in
  (* values produced by ptrtoint *)
  let ptrtoint_results = Value.VTbl.create 8 in
  List.iter
    (fun (b : Block.t) ->
      List.iter
        (fun (i : Instr.t) ->
          match (i.op, i.dst) with
          | Instr.Cast (PtrToInt, _, _, _), Some d ->
              Value.VTbl.replace ptrtoint_results d ()
          | _ -> ())
        b.body)
    f.blocks;
  List.iter
    (fun (b : Block.t) ->
      let where = Printf.sprintf "%s:%s" f.fname b.label in
      List.iter
        (fun (i : Instr.t) ->
          match i.op with
          | Instr.Cast (IntToPtr, _, _, _) ->
              add Inttoptr_cast where
                "pointer created from an integer: SoftBound bounds are \
                 lost (wide or null, per configuration); Low-Fat assumes \
                 the value is still in bounds (§4.4)"
          | Instr.Store (ty, Value.Var v, _)
            when Ty.is_int ty && Value.VTbl.mem ptrtoint_results v ->
              add Ptr_stored_as_int where
                "a pointer is stored to memory as an integer: SoftBound's \
                 trie is not updated and later loads will see outdated \
                 bounds (Fig. 7)"
          | _ -> ())
        b.body)
    f.blocks;
  (* byte-copy loop heuristic over natural loops *)
  if not f.is_external then begin
    let cfg = Mi_analysis.Cfg.build f in
    let dom = Mi_analysis.Dom.build cfg in
    let loops = Mi_analysis.Loops.build cfg dom in
    List.iter
      (fun (l : Mi_analysis.Loops.loop) ->
        let has_i8_load = ref false and has_i8_store = ref false in
        List.iter
          (fun bi ->
            List.iter
              (fun (i : Instr.t) ->
                match i.op with
                | Instr.Load (Ty.I8, _) -> has_i8_load := true
                | Instr.Store (Ty.I8, _, _) -> has_i8_store := true
                | _ -> ())
              cfg.Mi_analysis.Cfg.blocks.(bi).Block.body)
          l.body;
        if !has_i8_load && !has_i8_store then
          add Bytewise_copy_loop
            (Printf.sprintf "%s:%s" f.fname
               (Mi_analysis.Cfg.label cfg l.header))
            "loop copies bytes between objects: if they contain pointers, \
             SoftBound's metadata silently desynchronizes (§4.5); \
             consider memcpy")
      loops.Mi_analysis.Loops.loops
  end;
  (* oversized constant allocations: resolve simple constant chains
     (casts, constant arithmetic) so that e.g. a sign-extended int
     literal argument is still recognized *)
  let consts = Value.VTbl.create 16 in
  let as_const (v : Value.t) =
    match v with
    | Value.Int (_, k) -> Some k
    | Value.Var x -> Value.VTbl.find_opt consts x
    | _ -> None
  in
  List.iter
    (fun (b : Block.t) ->
      List.iter
        (fun (i : Instr.t) ->
          match (i.op, i.dst) with
          | Instr.Cast ((Zext | Sext | Trunc), from_ty, v, to_ty), Some d -> (
              match as_const v with
              | Some k ->
                  Value.VTbl.replace consts d
                    (Eval.cast_int
                       (match i.op with
                       | Instr.Cast (c, _, _, _) -> c
                       | _ -> assert false)
                       from_ty to_ty k)
              | None -> ())
          | Instr.Bin (op, ty, a, b'), Some d -> (
              match (as_const a, as_const b') with
              | Some x, Some y -> (
                  match Eval.binop op ty x y with
                  | v -> Value.VTbl.replace consts d v
                  | exception Eval.Div_by_zero -> ())
              | _ -> ())
          | _ -> ())
        b.body)
    f.blocks;
  List.iter
    (fun (b : Block.t) ->
      let where = Printf.sprintf "%s:%s" f.fname b.label in
      List.iter
        (fun (i : Instr.t) ->
          match i.op with
          | Instr.Call (("malloc" | "calloc"), args) ->
              let const_total =
                match List.map as_const args with
                | [ Some n ] -> Some n
                | [ Some a; Some b ] -> Some (a * b)
                | _ -> None
              in
              (match const_total with
              | Some n when n > max_lowfat_size ->
                  add Oversized_alloc where
                    "allocation of %d bytes exceeds the largest low-fat \
                     region (2^30): the object gets wide bounds under \
                     Low-Fat Pointers (§4.6)"
                    n
              | _ -> ())
          | _ -> ())
        b.body)
    f.blocks;
  List.rev !out

let analyze_module (m : Irmod.t) : t list =
  let globals =
    List.filter_map
      (fun (g : Irmod.global) ->
        if g.gextern && not g.gsize_known then
          Some
            {
              d_kind = Size_zero_extern;
              d_where = "global @" ^ g.gname;
              d_message =
                "size-less extern array declaration: SoftBound cannot \
                 derive bounds and uses wide or null bounds (§4.3); \
                 declare the size or link before instrumenting";
            }
        else None)
      m.globals
  in
  globals @ List.concat_map analyze_func (Irmod.defined_funcs m)
