(** Deferred-edit buffer for function rewriting.

    The instrumentation decides *what* to insert while walking the original
    function (whose instructions are addressed as [(block label, position)]
    pairs) and applies all edits in a single rebuild at the end, so
    positions never shift under it.  Per anchor instruction, edits can be
    inserted before it, after it, or replace it; blocks can receive new
    phis and instructions before their terminator; the entry block can be
    prepended to. *)

open Mi_mir

type anchor = { ablock : string; apos : int }

type t = {
  func : Func.t;
  entry_pre : Instr.t list ref;  (** reversed *)
  before : (anchor, Instr.t list ref) Hashtbl.t;  (** reversed *)
  after : (anchor, Instr.t list ref) Hashtbl.t;  (** reversed *)
  replace : (anchor, Instr.t) Hashtbl.t;
  at_end : (string, Instr.t list ref) Hashtbl.t;
      (** before the terminator; reversed *)
  new_phis : (string, Instr.phi list ref) Hashtbl.t;
}

let create func =
  {
    func;
    entry_pre = ref [];
    before = Hashtbl.create 32;
    after = Hashtbl.create 32;
    replace = Hashtbl.create 8;
    at_end = Hashtbl.create 8;
    new_phis = Hashtbl.create 8;
  }

let push tbl key i =
  match Hashtbl.find_opt tbl key with
  | Some l -> l := i :: !l
  | None -> Hashtbl.add tbl key (ref [ i ])

(** Fresh SSA variable in the function being edited. *)
let fresh t ?name ty = Func.fresh_var t.func ?name ty

let insert_entry t i = t.entry_pre := i :: !(t.entry_pre)
let insert_before t anchor i = push t.before anchor i
let insert_after t anchor i = push t.after anchor i
let insert_at_end t block i = push t.at_end block i

let set_replacement t anchor i =
  if Hashtbl.mem t.replace anchor then
    invalid_arg "Edit.set_replacement: anchor already replaced";
  Hashtbl.replace t.replace anchor i

let add_phi t block (p : Instr.phi) = push t.new_phis block p

(* convenience emitters returning the defined value *)

let emit_entry t ?name ty op : Value.t =
  let dst = fresh t ?name ty in
  insert_entry t (Instr.mk ~dst op);
  Var dst

let emit_after t anchor ?name ty op : Value.t =
  let dst = fresh t ?name ty in
  insert_after t anchor (Instr.mk ~dst op);
  Var dst

let emit_before t anchor ?name ty op : Value.t =
  let dst = fresh t ?name ty in
  insert_before t anchor (Instr.mk ~dst op);
  Var dst

(** Rebuild the function with all recorded edits applied.  The edited
    function is rebuilt in place (same [Func.t]); anchors refer to the
    original layout. *)
let apply (t : t) : unit =
  let f = t.func in
  let entry_label =
    match f.blocks with b :: _ -> b.Block.label | [] -> ""
  in
  let get tbl key =
    match Hashtbl.find_opt tbl key with
    | Some l -> List.rev !l
    | None -> []
  in
  f.blocks <-
    List.map
      (fun (b : Block.t) ->
        let body =
          List.concat
            (List.mapi
               (fun pos (i : Instr.t) ->
                 let a = { ablock = b.label; apos = pos } in
                 let mid =
                   match Hashtbl.find_opt t.replace a with
                   | Some r -> r
                   | None -> i
                 in
                 get t.before a @ (mid :: get t.after a))
               b.body)
        in
        let body =
          if String.equal b.label entry_label then
            List.rev !(t.entry_pre) @ body
          else body
        in
        let body = body @ get t.at_end b.label in
        let phis = b.phis @ get t.new_phis b.label in
        { b with phis; body })
      f.blocks
