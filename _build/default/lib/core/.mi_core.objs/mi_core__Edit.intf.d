lib/core/edit.mli: Func Instr Mi_mir Ty Value
