lib/core/diagnose.ml: Array Block Eval Func Instr Irmod List Mi_analysis Mi_mir Printf Ty Value
