lib/core/config.mli:
