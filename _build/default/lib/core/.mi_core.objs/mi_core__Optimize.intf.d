lib/core/optimize.mli: Config Func Itarget Mi_mir Value
