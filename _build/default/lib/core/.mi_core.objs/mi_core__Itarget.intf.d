lib/core/itarget.mli: Edit Func Irmod Mi_mir Value
