lib/core/instrument.ml: Block Builder Config Edit Func Hashtbl Instr Intrinsics Irmod Itarget List Mi_mir Optimize Option Printer Printf Ty Value
