lib/core/optimize.ml: Config Edit Func Hashtbl Itarget List Mi_analysis Mi_mir Printf Ty Value
