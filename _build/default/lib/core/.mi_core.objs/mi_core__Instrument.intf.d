lib/core/instrument.mli: Config Func Irmod Mi_mir Value
