lib/core/edit.ml: Block Func Hashtbl Instr List Mi_mir String Value
