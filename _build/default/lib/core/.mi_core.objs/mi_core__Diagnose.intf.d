lib/core/diagnose.mli: Func Irmod Mi_mir
