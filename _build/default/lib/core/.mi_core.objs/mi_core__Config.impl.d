lib/core/config.ml: String
