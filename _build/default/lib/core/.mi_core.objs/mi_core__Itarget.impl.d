lib/core/itarget.ml: Block Edit Func Instr Intrinsics Irmod List Mi_mir Ty Value
