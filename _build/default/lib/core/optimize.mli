(** Approach-independent check optimizations on instrumentation targets
    (§5.3). *)

open Mi_mir

type stats = { before : int; after : int }

val removed : stats -> int

val value_key : Value.t -> string
(** Stable structural key used to group checks by checked pointer. *)

val dominance_eliminate :
  Func.t -> Itarget.check list -> Itarget.check list * stats
(** Remove every check dominated by an equal-or-wider check on the same
    pointer SSA value — the elimination "frequently described in
    literature" that the paper measures removing 8–50% of checks. *)

val run : Config.t -> Func.t -> Itarget.check list -> Itarget.check list * stats
(** Apply the optimizations enabled by the configuration. *)
