(** Approach-independent check optimizations on instrumentation targets.

    Implements the dominance-based redundant-check elimination evaluated in
    §5.3: when two accesses go through the same pointer SSA value and one
    access's check dominates the other with at least the same width, the
    dominated check is redundant — if the first check passes, the second
    cannot fail, and if it fails the program aborts before reaching the
    second.  This is the optimization "frequently described in the
    literature" [1, 10, 23] that the paper measures removing between 8%
    (177mesa) and 50% (256bzip2) of checks. *)

open Mi_mir
module Dom = Mi_analysis.Dom
module Cfg = Mi_analysis.Cfg

type stats = { before : int; after : int }

let removed s = s.before - s.after

(* A stable key for grouping checks by checked pointer value. *)
let value_key (v : Value.t) =
  match v with
  | Var x -> "v" ^ string_of_int x.vid
  | Int (ty, k) -> Printf.sprintf "i%s:%d" (Ty.to_string ty) k
  | Flt f -> Printf.sprintf "f%h" f
  | Glob g -> "g" ^ g
  | Fn g -> "fn" ^ g

(** Filter [checks], removing targets dominated by an equal-or-wider check
    on the same pointer. *)
let dominance_eliminate (f : Func.t) (checks : Itarget.check list) :
    Itarget.check list * stats =
  let cfg = Cfg.build f in
  let dom = Dom.build cfg in
  let groups : (string, Itarget.check list ref) Hashtbl.t =
    Hashtbl.create 32
  in
  List.iter
    (fun (c : Itarget.check) ->
      let key = value_key c.c_ptr in
      match Hashtbl.find_opt groups key with
      | Some l -> l := c :: !l
      | None -> Hashtbl.add groups key (ref [ c ]))
    checks;
  let dominates (a : Itarget.check) (b : Itarget.check) =
    let ba = Cfg.index cfg a.c_anchor.Edit.ablock in
    let bb = Cfg.index cfg b.c_anchor.Edit.ablock in
    if ba = bb then a.c_anchor.Edit.apos < b.c_anchor.Edit.apos
    else Dom.strictly_dominates dom ba bb
  in
  let keep (c : Itarget.check) group =
    not
      (List.exists
         (fun (other : Itarget.check) ->
           other != c && other.c_width >= c.c_width && dominates other c)
         group)
  in
  let result =
    List.filter
      (fun (c : Itarget.check) ->
        let group = !(Hashtbl.find groups (value_key c.c_ptr)) in
        keep c group)
      checks
  in
  (result, { before = List.length checks; after = List.length result })

(** Apply the configured target-level optimizations. *)
let run (config : Config.t) (f : Func.t) (checks : Itarget.check list) :
    Itarget.check list * stats =
  if config.opt_dominance then dominance_eliminate f checks
  else (checks, { before = List.length checks; after = List.length checks })
