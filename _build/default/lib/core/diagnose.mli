(** Static diagnostics for instrumentation hazards (§4.7): patterns that
    cause spurious reports or undetected violations, flagged before the
    program ever runs. *)

open Mi_mir

type kind =
  | Inttoptr_cast
      (** a pointer is created from an integer: SoftBound bounds are
          lost, Low-Fat assumes in-bounds (§4.4) *)
  | Ptr_stored_as_int
      (** a [ptrtoint] result is written to memory as an integer — the
          Figure 7 pattern that silently bypasses SoftBound's trie *)
  | Size_zero_extern
      (** size-less extern array declaration: wide or null SoftBound
          bounds (§4.3) *)
  | Oversized_alloc
      (** constant allocation beyond the largest low-fat region: wide
          Low-Fat bounds (§4.6) *)
  | Bytewise_copy_loop
      (** a loop both loads and stores bytes — possibly a byte-wise
          object copy desynchronizing SoftBound's metadata (§4.5) *)

type t = {
  d_kind : kind;
  d_where : string;  (** ["function:block"] or ["global @name"] *)
  d_message : string;
}

val kind_name : kind -> string
val to_string : t -> string

val max_lowfat_size : int
(** Largest allocation a low-fat region can serve (2^30 bytes). *)

val analyze_func : Func.t -> t list
val analyze_module : Irmod.t -> t list
