(** 401.bzip2-like workload (CPU2006): Huffman-flavored frequency coding
    over move-to-front transformed blocks (0%/0% in Table 2). *)

let source =
  {|
char *data;
int *freq;
int *mtf;
long N = 4000;

void gen_data(long seed) {
  long i;
  long x = (seed * 2654435761) % 2147483648;
  for (i = 0; i < 4000; i++) {
    x = (x * 1103515245 + 12345) % 2147483648;
    data[i] = (char)((x >> 9) % 16);
  }
}

void mtf_pass(void) {
  long order[16];
  long i, k;
  for (i = 0; i < 16; i++) order[i] = i;
  for (i = 0; i < 4000; i++) {
    long sym = data[i];
    long rank = 0;
    while (order[rank] != sym) rank++;
    for (k = rank; k > 0; k--) order[k] = order[k - 1];
    order[0] = sym;
    mtf[i] = (int)rank;
    freq[rank] += 1;
  }
}

long code_lengths(void) {
  long bits = 0;
  long i;
  long total = 0;
  for (i = 0; i < 16; i++) total += freq[i];
  for (i = 0; i < 4000; i++) {
    long r = mtf[i];
    /* unary-ish length model */
    bits += 1 + r;
  }
  return bits + total % 7;
}

int main(void) {
  long round;
  long bits = 0;
  long i;
  data = (char *)malloc(4000);
  freq = (int *)malloc(16 * sizeof(int));
  mtf = (int *)malloc(4000 * sizeof(int));
  for (round = 0; round < 6; round++) {
    for (i = 0; i < 16; i++) freq[i] = 0;
    gen_data(round + 3);
    mtf_pass();
    bits += code_lengths();
  }
  print_str("bzip2'06 bits ");
  print_int(bits);
  print_newline();
  return 0;
}
|}

let bench : Bench.t =
  Bench.mk "401bzip2" ~suite:Bench.CPU2006
    ~descr:"move-to-front + length coding over heap blocks (0%/0%)"
    [ Bench.src "bzip2_06" source ]
