(** 188.ammp-like workload: molecular-dynamics force accumulation over
    atom neighbor lists (LF 0.24% from a tiny amount of traffic through
    an uninstrumented math-library workspace). *)

let mathlib_unit =
  {|
/* mathlib.c: external library scratch space, NOT recompiled */
double scratch[32];

void lib_accumulate(double v) {
  scratch[0] += v;
}
|}

let ammp_unit =
  {|
extern double scratch[32];
void lib_accumulate(double v);

struct atom {
  double x, y, z;
  double fx, fy, fz;
};

struct atom *atoms;
int *neighbors;
long NA = 256;
long NN = 8;

void init_atoms(void) {
  long i, k;
  atoms = (struct atom *)malloc(256 * sizeof(struct atom));
  neighbors = (int *)malloc(256 * 8 * sizeof(int));
  for (i = 0; i < 256; i++) {
    atoms[i].x = (double)(i % 16);
    atoms[i].y = (double)((i / 16) % 16);
    atoms[i].z = (double)(i % 7) * 0.5;
    atoms[i].fx = 0.0;
    atoms[i].fy = 0.0;
    atoms[i].fz = 0.0;
    for (k = 0; k < 8; k++) {
      neighbors[i * 8 + k] = (int)((i * 31 + k * 7 + 1) % 256);
    }
  }
}

void forces(void) {
  long i, k;
  for (i = 0; i < 256; i++) {
    double fx = 0.0, fy = 0.0, fz = 0.0;
    for (k = 0; k < 8; k++) {
      long j = neighbors[i * 8 + k];
      double dx = atoms[i].x - atoms[j].x;
      double dy = atoms[i].y - atoms[j].y;
      double dz = atoms[i].z - atoms[j].z;
      double r2 = dx * dx + dy * dy + dz * dz + 0.1;
      double inv = 1.0 / r2;
      fx += dx * inv;
      fy += dy * inv;
      fz += dz * inv;
    }
    atoms[i].fx = fx;
    atoms[i].fy = fy;
    atoms[i].fz = fz;
  }
}

void integrate(void) {
  long i;
  for (i = 0; i < 256; i++) {
    atoms[i].x += atoms[i].fx * 0.001;
    atoms[i].y += atoms[i].fy * 0.001;
    atoms[i].z += atoms[i].fz * 0.001;
  }
}

int main(void) {
  long step;
  double e = 0.0;
  long i;
  init_atoms();
  for (step = 0; step < 35; step++) {
    forces();
    integrate();
    if (step % 2 == 0) {
      long j;
      lib_accumulate(atoms[step % 256].fx);
      for (j = 0; j < 56; j++) e += scratch[j % 32];
    }
  }
  for (i = 0; i < 256; i++) e += atoms[i].x;
  print_str("ammp energy ");
  print_int((long)(e * 100.0) % 10000000);
  print_newline();
  return 0;
}
|}

let bench : Bench.t =
  Bench.mk "188ammp" ~suite:Bench.CPU2000
    ~descr:
      "molecular dynamics force loop; sporadic accesses to an \
       uninstrumented library workspace (Low-Fat: 0.24% wide)"
    [
      Bench.src ~instrument:false "mathlib" mathlib_unit;
      Bench.src "ammp" ammp_unit;
    ]
