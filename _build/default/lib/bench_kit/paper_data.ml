(** Reference numbers from the paper, for side-by-side reporting.

    Table 2 ("Number of unsafe dereferences in %"): the SoftBound column
    is complete in the paper; of the Low-Fat column, the CPU2000 half and
    the 429mcf value (~54%, §4.6) are stated, the remaining CPU2006
    Low-Fat entries are not available in our copy of the table and are
    recorded as [None].

    A starred 0.00 means "not a single check with wide bounds". *)

type t2 = {
  sb : float option;
  sb_star : bool;
  lf : float option;
  lf_star : bool;
}

let table2 : (string * t2) list =
  [
    ("164gzip", { sb = Some 61.71; sb_star = false; lf = Some 0.00; lf_star = false });
    ("177mesa", { sb = Some 0.00; sb_star = true; lf = Some 1.57; lf_star = false });
    ("179art", { sb = Some 0.00; sb_star = true; lf = Some 0.00; lf_star = false });
    ("181mcf", { sb = Some 0.00; sb_star = true; lf = Some 0.00; lf_star = false });
    ("183equake", { sb = Some 0.00; sb_star = true; lf = Some 0.00; lf_star = false });
    ("186crafty", { sb = Some 0.00; sb_star = true; lf = Some 0.00; lf_star = false });
    ("188ammp", { sb = Some 0.00; sb_star = true; lf = Some 0.24; lf_star = false });
    ("197parser", { sb = Some 0.27; sb_star = false; lf = Some 7.14; lf_star = false });
    ("256bzip2", { sb = Some 0.00; sb_star = true; lf = Some 0.00; lf_star = false });
    ("300twolf", { sb = Some 0.37; sb_star = false; lf = Some 2.08; lf_star = false });
    ("401bzip2", { sb = Some 0.00; sb_star = true; lf = None; lf_star = false });
    ("429mcf", { sb = Some 0.00; sb_star = true; lf = Some 54.0; lf_star = false });
    ("433milc", { sb = Some 0.00; sb_star = true; lf = None; lf_star = false });
    ("445gobmk", { sb = Some 0.66; sb_star = false; lf = None; lf_star = false });
    ("456hmmer", { sb = Some 0.00; sb_star = false; lf = None; lf_star = false });
    ("458sjeng", { sb = Some 0.00; sb_star = false; lf = None; lf_star = false });
    ("462libquant", { sb = Some 0.00; sb_star = true; lf = None; lf_star = false });
    ("464h264ref", { sb = Some 0.00; sb_star = true; lf = None; lf_star = false });
    ("470lbm", { sb = Some 0.00; sb_star = true; lf = None; lf_star = false });
    ("482sphinx3", { sb = Some 0.00; sb_star = true; lf = None; lf_star = false });
  ]

(** Figure 9: mean slowdowns reported in §5.2. *)
let fig9_mean_sb = 1.74

let fig9_mean_lf = 1.77

(** §5.3: fraction of checks removed by dominance elimination. *)
let opt_removed_min = (8.0, "177mesa")

let opt_removed_max = (50.0, "256bzip2")

(** §5.5: picking the early EP for one tool and a late one for the other
    skews the comparison by about this factor. *)
let ep_gap = 1.30
