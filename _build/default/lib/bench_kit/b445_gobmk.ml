(** 445.gobmk-like workload: Go board liberty counting and pattern
    matching; a pattern table is declared size-zero in the hot unit
    (SoftBound: 0.66% wide). *)

let patterns_unit =
  {|
int pattern_val[64] = {3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8, 9, 7, 9, 3,
                       2, 3, 8, 4, 6, 2, 6, 4, 3, 3, 8, 3, 2, 7, 9, 5,
                       0, 2, 8, 8, 4, 1, 9, 7, 1, 6, 9, 3, 9, 9, 3, 7,
                       5, 1, 0, 5, 8, 2, 0, 9, 7, 4, 9, 4, 4, 5, 9, 2};
|}

let gobmk_unit =
  {|
extern int pattern_val[];   /* size-zero declaration of the table */

int board[361];
int marks[361];

long rnd_state = 777;
long rnd(long n) {
  rnd_state = (rnd_state * 1103515245 + 12345) % 2147483648;
  return (rnd_state >> 5) % n;
}

void setup_board(void) {
  long i;
  for (i = 0; i < 361; i++) {
    long r = rnd(10);
    board[i] = (r < 3) ? 1 : ((r < 6) ? 2 : 0);
    marks[i] = 0;
  }
}

long count_liberties(long pos, long color, long depth) {
  if (pos < 0 || pos >= 361) return 0;
  if (marks[pos]) return 0;
  marks[pos] = 1;
  if (board[pos] == 0) return 1;
  if (board[pos] != color || depth > 40) return 0;
  long libs = 0;
  long r = pos / 19;
  long c = pos % 19;
  if (c > 0) libs += count_liberties(pos - 1, color, depth + 1);
  if (c < 18) libs += count_liberties(pos + 1, color, depth + 1);
  if (r > 0) libs += count_liberties(pos - 19, color, depth + 1);
  if (r < 18) libs += count_liberties(pos + 19, color, depth + 1);
  return libs;
}

long scan_patterns(void) {
  long score = 0;
  long i;
  for (i = 0; i < 361; i++) {
    if (board[i] != 0 && i % 6 == 0) {
      score += pattern_val[(board[i] * 7 + i) % 64];
    }
  }
  return score;
}

int main(void) {
  long game;
  long total = 0;
  for (game = 0; game < 30; game++) {
    setup_board();
    long p;
    for (p = 0; p < 361; p += 37) {
      long i;
      for (i = 0; i < 361; i++) marks[i] = 0;
      if (board[p] != 0) total += count_liberties(p, board[p], 0);
    }
    total += scan_patterns();
  }
  print_str("gobmk total ");
  print_int(total);
  print_newline();
  return 0;
}
|}

let bench : Bench.t =
  Bench.mk "445gobmk" ~suite:Bench.CPU2006 ~size_zero_arrays:true
    ~descr:
      "Go liberty counting; pattern table declared size-zero in the hot \
       unit (SoftBound: 0.66% wide)"
    [ Bench.src "gobmk" gobmk_unit; Bench.src "patterns" patterns_unit ]
