(** 186.crafty-like workload: bitboard move generation over global tables.

    Check-dense integer code whose pointers all have locally-known
    witnesses (globals and stack slots) — neither approach needs trie or
    shadow-stack traffic, so the per-check cost difference decides the
    outcome and SoftBound's cheaper check wins (§5.2). *)

let source =
  {|
long knight_moves[64];
long king_moves[64];
long rank_attacks[64];
long occupancy[8];
long history[4096];

long popcount(long b) {
  long c = 0;
  while (b) { b = b & (b - 1); c++; }
  return c;
}

void init_tables(void) {
  long sq;
  for (sq = 0; sq < 64; sq++) {
    long r = sq / 8;
    long f = sq % 8;
    long km = 0;
    long gm = 0;
    long dr, df;
    for (dr = -2; dr <= 2; dr++) {
      for (df = -2; df <= 2; df++) {
        long nr = r + dr;
        long nf = f + df;
        if (nr >= 0 && nr < 8 && nf >= 0 && nf < 8) {
          long d = dr * dr + df * df;
          if (d == 5) km |= (1 << (nr * 8 + nf) % 63);
          if (d == 1 || d == 2) gm |= (1 << (nr * 8 + nf) % 63);
        }
      }
    }
    knight_moves[sq] = km;
    king_moves[sq] = gm;
    rank_attacks[sq] = (km ^ gm) & 255;
  }
  for (sq = 0; sq < 8; sq++) occupancy[sq] = (sq * 435761) % 255;
  for (sq = 0; sq < 4096; sq++) history[sq] = 0;
}

long evaluate(long side, long ply) {
  long score = 0;
  long sq;
  for (sq = 0; sq < 64; sq++) {
    long n = knight_moves[sq];
    long k = king_moves[sq];
    long occ = occupancy[sq % 8];
    score += popcount(n & occ) * 3;
    score += popcount(k & ~occ) * 2;
    score += rank_attacks[(sq + ply) % 64] % 7;
    history[(side * 64 + sq + ply * 13) % 4096] += 1;
  }
  return score;
}

int main(void) {
  long total = 0;
  long ply;
  init_tables();
  for (ply = 0; ply < 220; ply++) {
    total += evaluate(ply % 2, ply);
  }
  print_str("crafty eval ");
  print_int(total % 1000000);
  print_newline();
  return 0;
}
|}

let bench : Bench.t =
  Bench.mk "186crafty" ~suite:Bench.CPU2000
    ~descr:
      "bitboard evaluation over global tables; check-dense, witnesses \
       statically known (SoftBound's cheaper check wins, §5.2)"
    [ Bench.src "crafty" source ]
