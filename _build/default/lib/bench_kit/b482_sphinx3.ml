(** 482.sphinx3-like workload: Gaussian mixture scoring of acoustic
    feature frames (float-heavy, 0%/0%). *)

let source =
  {|
long NFRAMES = 80;
long NDIM = 13;
long NGAUSS = 32;

double *means;    /* NGAUSS x NDIM */
double *vars;
double *feats;    /* NFRAMES x NDIM */
int *senone;

void init_models(void) {
  long g, d;
  means = (double *)malloc(32 * 13 * sizeof(double));
  vars = (double *)malloc(32 * 13 * sizeof(double));
  feats = (double *)malloc(80 * 13 * sizeof(double));
  senone = (int *)malloc(80 * sizeof(int));
  for (g = 0; g < 32; g++) {
    for (d = 0; d < 13; d++) {
      means[g * 13 + d] = (double)((g * 7 + d * 3) % 11) * 0.3;
      vars[g * 13 + d] = 0.5 + (double)((g + d) % 4) * 0.25;
    }
  }
  long f;
  for (f = 0; f < 80; f++) {
    for (d = 0; d < 13; d++) {
      feats[f * 13 + d] = (double)(((f * 13 + d) * 29) % 23) * 0.15;
    }
  }
}

long score_frame(long f) {
  long g, d;
  double best = -1000000000.0;
  long besti = 0;
  for (g = 0; g < 32; g++) {
    double s = 0.0;
    for (d = 0; d < 13; d++) {
      double diff = feats[f * 13 + d] - means[g * 13 + d];
      s -= diff * diff / vars[g * 13 + d];
    }
    if (s > best) { best = s; besti = g; }
  }
  senone[f] = (int)besti;
  return besti;
}

int main(void) {
  long f;
  long acc = 0;
  init_models();
  for (f = 0; f < 80; f++) {
    acc += score_frame(f);
  }
  long runs = 0;
  for (f = 1; f < 80; f++) {
    if (senone[f] != senone[f - 1]) runs++;
  }
  print_str("sphinx3 acc ");
  print_int(acc);
  print_str(" runs ");
  print_int(runs);
  print_newline();
  return 0;
}
|}

let bench : Bench.t =
  Bench.mk "482sphinx3" ~suite:Bench.CPU2006
    ~descr:"Gaussian-mixture acoustic scoring (0%/0%)"
    [ Bench.src "sphinx3" source ]
