(** 300.twolf-like workload: simulated-annealing cell placement.

    Cells are moved between grid slots by copying structs.  The original
    benchmark copied structs byte-by-byte, which silently breaks
    SoftBound's metadata (§4.5); the paper replaced the byte-wise copy by
    [memcpy] (§5.1.2), and this version ships that fix — the unfixed
    variant lives in the usability corpus.  A small amount of traffic
    goes through an uninstrumented display library (Low-Fat wide) and a
    rarely-consulted size-zero extern table (SoftBound wide). *)

let displaylib_unit =
  {|
/* displib.c: external library, NOT recompiled */
long disp_rows[40];

void lib_mark_row(long r, long v) {
  disp_rows[r % 40] += v;
}
|}

let twolf_unit =
  {|
extern long disp_rows[40];
extern int net_weight[];    /* size-zero declaration */
void lib_mark_row(long r, long v);

struct cell {
  long id;
  long x;
  long y;
  long width;
  struct cell *net;
};

struct cell cells[128];
struct cell slots[256];
long grid_cost = 0;

long rnd_state = 12345;
long rnd(long n) {
  rnd_state = (rnd_state * 1103515245 + 12345) % 2147483648;
  return (rnd_state >> 7) % n;
}

void init_cells(void) {
  long i;
  for (i = 0; i < 128; i++) {
    cells[i].id = i;
    cells[i].x = rnd(16);
    cells[i].y = rnd(16);
    cells[i].width = 1 + rnd(4);
    cells[i].net = &cells[(i * 17 + 5) % 128];
  }
}

long wire_len(struct cell *c) {
  struct cell *n = c->net;
  long dx = c->x - n->x;
  long dy = c->y - n->y;
  if (dx < 0) dx = -dx;
  if (dy < 0) dy = -dy;
  return dx + dy + c->width;
}

long try_move(long step) {
  long a = rnd(128);
  long slot = rnd(256);
  long before = wire_len(&cells[a]);
  /* save into the slot array: struct copy via memcpy (the fix) */
  memcpy(&slots[slot], &cells[a], sizeof(struct cell));
  cells[a].x = rnd(16);
  cells[a].y = rnd(16);
  long after = wire_len(&cells[a]);
  if (step % 4 == 0) {
    long r;
    lib_mark_row(cells[a].y, 1);
    for (r = 0; r < 2; r++) {
      grid_cost += disp_rows[(cells[a].y + r) % 40] % 3;
    }
  }
  if (step % 8 == 0) {
    grid_cost += net_weight[a % 16];
  }
  if (after > before) {
    /* reject: restore the saved cell */
    memcpy(&cells[a], &slots[slot], sizeof(struct cell));
    return 0;
  }
  return before - after;
}

int main(void) {
  long step;
  long gain = 0;
  init_cells();
  for (step = 0; step < 2600; step++) {
    gain += try_move(step);
  }
  print_str("twolf gain ");
  print_int(gain + grid_cost);
  print_newline();
  return 0;
}
|}

let weights_unit =
  {|
int net_weight[16] = {2, 1, 3, 1, 2, 2, 1, 4, 1, 2, 3, 1, 1, 2, 1, 3};
|}

let bench : Bench.t =
  Bench.mk "300twolf" ~suite:Bench.CPU2000 ~size_zero_arrays:true
    ~descr:
      "annealing placement with struct copies via memcpy (the §5.1.2 \
       fix); light traffic through an uninstrumented display library"
    [
      Bench.src ~instrument:false "displib" displaylib_unit;
      Bench.src "twolf" twolf_unit;
      Bench.src "weights" weights_unit;
    ]
