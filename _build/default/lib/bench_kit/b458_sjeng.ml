(** 458.sjeng-like workload: alpha-beta game-tree search with a
    transposition table; a size-zero extern piece-square table is used on
    a cold path only (SoftBound: 0.00%, below rounding). *)

let psq_unit =
  {|
int psq_endgame[64] = {0, 1, 1, 2, 2, 1, 1, 0, 1, 2, 2, 3, 3, 2, 2, 1,
                       1, 2, 3, 4, 4, 3, 2, 1, 2, 3, 4, 5, 5, 4, 3, 2,
                       2, 3, 4, 5, 5, 4, 3, 2, 1, 2, 3, 4, 4, 3, 2, 1,
                       1, 2, 2, 3, 3, 2, 2, 1, 0, 1, 1, 2, 2, 1, 1, 0};
|}

let sjeng_unit =
  {|
extern int psq_endgame[];   /* size-zero declaration; cold path */

struct tt_entry { long key; long depth; long score; };

struct tt_entry tt[512];
long nodes_searched = 0;

long eval_position(long key) {
  long score = (key * 40503) % 97 - 48;
  if (key % 1021 == 0) {
    /* cold: endgame piece-square correction */
    score += psq_endgame[key % 64];
  }
  return score;
}

long search(long key, long depth, long alpha, long beta) {
  nodes_searched++;
  long slot = (key % 512 + 512) % 512;
  if (tt[slot].key == key && tt[slot].depth >= depth) {
    return tt[slot].score;
  }
  if (depth == 0) return eval_position(key);
  long best = -100000;
  long mv;
  for (mv = 0; mv < 5; mv++) {
    long child = (key * 48271 + mv * 16807 + 1) % 1000003;
    long s = -search(child, depth - 1, -beta, -alpha);
    if (s > best) best = s;
    if (best > alpha) alpha = best;
    if (alpha >= beta) break;
  }
  tt[slot].key = key;
  tt[slot].depth = depth;
  tt[slot].score = best;
  return best;
}

int main(void) {
  long root;
  long total = 0;
  for (root = 0; root < 12; root++) {
    total += search(root * 7919, 5, -100000, 100000);
  }
  print_str("sjeng nodes ");
  print_int(nodes_searched);
  print_str(" score ");
  print_int(total);
  print_newline();
  return 0;
}
|}

let bench : Bench.t =
  Bench.mk "458sjeng" ~suite:Bench.CPU2006 ~size_zero_arrays:true
    ~descr:
      "alpha-beta search with transposition table; size-zero table on a \
       cold path (SoftBound: 0.00%)"
    [ Bench.src "sjeng" sjeng_unit; Bench.src "psq" psq_unit ]
