(** 462.libquantum-like workload: quantum register simulation with gate
    applications over a heap amplitude array (0%/0%). *)

let source =
  {|
struct amp { double re; double im; };

struct amp *reg;
long QBITS = 10;
long SIZE = 1024;

void init_reg(void) {
  long i;
  reg = (struct amp *)malloc(1024 * sizeof(struct amp));
  for (i = 0; i < 1024; i++) {
    reg[i].re = 0.0;
    reg[i].im = 0.0;
  }
  reg[0].re = 1.0;
}

void hadamard(long target) {
  long mask = 1 << target;
  long i;
  double inv = 0.70710678118;
  for (i = 0; i < 1024; i++) {
    if ((i & mask) == 0) {
      long j = i | mask;
      double are = reg[i].re, aim = reg[i].im;
      double bre = reg[j].re, bim = reg[j].im;
      reg[i].re = (are + bre) * inv;
      reg[i].im = (aim + bim) * inv;
      reg[j].re = (are - bre) * inv;
      reg[j].im = (aim - bim) * inv;
    }
  }
}

void cnot(long control, long target) {
  long cm = 1 << control;
  long tm = 1 << target;
  long i;
  for (i = 0; i < 1024; i++) {
    if ((i & cm) && (i & tm) == 0) {
      long j = i | tm;
      double tre = reg[i].re, tim = reg[i].im;
      reg[i].re = reg[j].re;
      reg[i].im = reg[j].im;
      reg[j].re = tre;
      reg[j].im = tim;
    }
  }
}

int main(void) {
  long round, q;
  double norm = 0.0;
  long i;
  init_reg();
  for (round = 0; round < 12; round++) {
    for (q = 0; q < 10; q++) hadamard(q);
    for (q = 0; q < 9; q++) cnot(q, q + 1);
  }
  for (i = 0; i < 1024; i++) {
    norm += reg[i].re * reg[i].re + reg[i].im * reg[i].im;
  }
  print_str("libquantum norm ");
  print_int((long)(norm * 1000.0));
  print_newline();
  return 0;
}
|}

let bench : Bench.t =
  Bench.mk "462libquant" ~suite:Bench.CPU2006
    ~descr:"quantum register gate simulation over heap amplitudes (0%/0%)"
    [ Bench.src "libquantum" source ]
