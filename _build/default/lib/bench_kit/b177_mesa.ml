(** 177.mesa-like workload: software rasterization of triangles.

    Most work happens in heap buffers the application owns (precisely
    bounded under both approaches); a small fraction of stores lands in a
    framebuffer owned by an uninstrumented display library.  Its extern
    declaration carries the size, so SoftBound stays precise (0.00 %, starred),
    while Low-Fat sees a non-mirrored, non-low-fat global: wide bounds
    (the paper's 1.57%). *)

let fblib_unit =
  {|
/* fblib.c: external display library, NOT recompiled */
int framebuffer[4096];

void fb_present(void) {
  long i;
  for (i = 0; i < 4096; i++) framebuffer[i] = 0;
}
|}

let mesa_unit =
  {|
extern int framebuffer[4096];
void fb_present(void);

double *zbuf;
int *cbuf;

long EDGE = 64;

void init_buffers(void) {
  long i;
  zbuf = (double *)malloc(64 * 64 * sizeof(double));
  cbuf = (int *)malloc(64 * 64 * sizeof(int));
  for (i = 0; i < 64 * 64; i++) {
    zbuf[i] = 1000000.0;
    cbuf[i] = 0;
  }
}

long edge_fn(long ax, long ay, long bx, long by, long px, long py) {
  return (bx - ax) * (py - ay) - (by - ay) * (px - ax);
}

long raster_tri(long t) {
  long ax = (t * 13) % 60, ay = (t * 7) % 60;
  long bx = (ax + 20) % 64, by = (ay + 5) % 64;
  long cx = (ax + 9) % 64, cy = (ay + 22) % 64;
  long minx = ax, miny = ay, maxx = ax, maxy = ay;
  if (bx < minx) minx = bx;
  if (cx < minx) minx = cx;
  if (by < miny) miny = by;
  if (cy < miny) miny = cy;
  if (bx > maxx) maxx = bx;
  if (cx > maxx) maxx = cx;
  if (by > maxy) maxy = by;
  if (cy > maxy) maxy = cy;
  long x, y;
  long covered = 0;
  double z = 1.0 + (double)(t % 9);
  for (y = miny; y <= maxy; y++) {
    for (x = minx; x <= maxx; x++) {
      long w0 = edge_fn(ax, ay, bx, by, x, y);
      long w1 = edge_fn(bx, by, cx, cy, x, y);
      long w2 = edge_fn(cx, cy, ax, ay, x, y);
      if ((w0 >= 0 && w1 >= 0 && w2 >= 0) ||
          (w0 <= 0 && w1 <= 0 && w2 <= 0)) {
        long idx = y * 64 + x;
        if (z < zbuf[idx]) {
          zbuf[idx] = z;
          cbuf[idx] = (int)(t % 255);
          covered++;
        }
      }
    }
  }
  return covered;
}

void blit(void) {
  /* the rare external-framebuffer traffic */
  long i;
  for (i = 0; i < 64 * 64; i += 24) {
    framebuffer[i] = cbuf[i];
  }
}

int main(void) {
  long t;
  long total = 0;
  init_buffers();
  for (t = 0; t < 100; t++) {
    total += raster_tri(t);
    if (t % 16 == 15) blit();
  }
  print_str("mesa covered ");
  print_int(total);
  print_newline();
  return 0;
}
|}

let bench : Bench.t =
  Bench.mk "177mesa" ~suite:Bench.CPU2000
    ~descr:
      "triangle rasterizer; occasional stores to an uninstrumented \
       library framebuffer (Low-Fat wide bounds, §4.6)"
    [
      Bench.src ~instrument:false "fblib" fblib_unit;
      Bench.src "mesa" mesa_unit;
    ]
