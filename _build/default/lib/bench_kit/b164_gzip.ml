(** 164.gzip-like workload: LZ77-style match finder over a window.

    The defining property from the paper (§4.6, Table 2): the hot
    translation unit declares the window arrays as size-zero extern
    arrays ([extern ... window[];]) whose definitions live in a sibling
    unit.  SoftBound cannot derive bounds for them and (with
    [-mi-sb-size-zero-wide-upper]) uses wide upper bounds — the paper
    measures 61.71% wide accesses.  Low-Fat mirrors the defining unit's
    globals and keeps precise bounds (0.00%). *)

let deflate_unit =
  {|
/* deflate.c: hot match-finding loop; arrays declared without size */
extern char window[];      /* size-zero: SoftBound wide bounds */
extern int head[512];      /* sized declarations: precise */
extern int prev[8192];
extern int match_hist[64];
extern int lit_freq[256];

long WSIZE = 8192;
long HSIZE = 512;

long hash3(long pos) {
  long a = window[pos];
  long b = window[pos + 1];
  long c = window[pos + 2];
  return ((a * 31 + b) * 31 + c) % 512;
}

long longest_match(long pos, long limit) {
  long h = hash3(pos);
  long cand = head[h];
  long best = 0;
  long tries = 8;
  while (cand > 0 && tries > 0) {
    long len = 0;
    while (len < 32 && pos + len < limit &&
           window[cand + len] == window[pos + len]) {
      len++;
    }
    if (len > best) best = len;
    cand = prev[cand % 8192];
    tries--;
  }
  match_hist[best % 64] += 1;
  return best;
}

long insert_string(long pos) {
  long h = hash3(pos);
  prev[pos % 8192] = head[h];
  head[h] = pos;
  return h;
}

long deflate_block(long limit) {
  long pos = 0;
  long emitted = 0;
  while (pos + 3 < limit) {
    long m = longest_match(pos, limit);
    insert_string(pos);
    head[(pos * 7) % 512] += 1;
    if (m >= 3) {
      emitted += 2;
      pos += m;
    } else {
      lit_freq[window[pos] % 256] += 1;
      emitted += 1;
      pos += 1;
    }
  }
  return emitted;
}
|}

let window_unit =
  {|
/* window.c: the defining translation unit */
char window[8200];
int head[512];
int prev[8192];
int match_hist[64];
int lit_freq[256];

void fill_window(long n, long seed) {
  long i;
  long x = seed;
  for (i = 0; i < n; i++) {
    x = (x * 1103515245 + 12345) % 2147483648;
    /* low entropy so matches exist */
    window[i] = (char)((x >> 16) % 7 + 97);
  }
}
|}

let main_unit =
  {|
long deflate_block(long limit);
void fill_window(long n, long seed);

int main(void) {
  long total = 0;
  long round;
  for (round = 0; round < 6; round++) {
    fill_window(8000, round + 1);
    total += deflate_block(8000);
  }
  print_str("gzip emitted ");
  print_int(total);
  print_newline();
  return 0;
}
|}

let bench : Bench.t =
  Bench.mk "164gzip" ~suite:Bench.CPU2000 ~size_zero_arrays:true
    ~descr:
      "LZ77 match finder; hot unit uses size-zero extern window arrays \
       (SoftBound wide bounds, §4.6)"
    [
      Bench.src "deflate" deflate_unit;
      Bench.src "window" window_unit;
      Bench.src "main" main_unit;
    ]
