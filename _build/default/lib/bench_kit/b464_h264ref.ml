(** 464.h264ref-like workload: motion estimation by sum-of-absolute
    differences over reference frames.  The paper fixed two known
    out-of-bounds accesses in 464h264ref (§5.1.2); this version indexes
    within bounds accordingly. *)

let source =
  {|
long W = 64;
long H = 48;

char *cur;
char *ref;
int *mvx;
int *mvy;

void gen_frames(long seed) {
  long i;
  long x = seed;
  for (i = 0; i < 64 * 48; i++) {
    x = (x * 1103515245 + 12345) % 2147483648;
    cur[i] = (char)((x >> 16) % 64);
    ref[i] = (char)(((x >> 16) + i / 64) % 64);
  }
}

long sad8(long cx, long cy, long rx, long ry) {
  long s = 0;
  long dy, dx;
  for (dy = 0; dy < 8; dy++) {
    for (dx = 0; dx < 8; dx++) {
      long a = cur[(cy + dy) * 64 + cx + dx];
      long b = ref[(ry + dy) * 64 + rx + dx];
      long d = a - b;
      if (d < 0) d = -d;
      s += d;
    }
  }
  return s;
}

long motion_search(void) {
  long total = 0;
  long by, bx;
  long nb = 0;
  for (by = 0; by + 8 <= 48; by += 8) {
    for (bx = 0; bx + 8 <= 64; bx += 8) {
      long best = 1 << 30;
      long bestdx = 0, bestdy = 0;
      long dy, dx;
      for (dy = -2; dy <= 2; dy++) {
        for (dx = -2; dx <= 2; dx++) {
          long rx = bx + dx;
          long ry = by + dy;
          /* §5.1.2 fix: clamp the search window inside the frame */
          if (rx < 0 || ry < 0 || rx + 8 > 64 || ry + 8 > 48) continue;
          long s = sad8(bx, by, rx, ry);
          if (s < best) { best = s; bestdx = dx; bestdy = dy; }
        }
      }
      mvx[nb] = (int)bestdx;
      mvy[nb] = (int)bestdy;
      nb++;
      total += best;
    }
  }
  return total;
}

int main(void) {
  long f;
  long total = 0;
  cur = (char *)malloc(64 * 48);
  ref = (char *)malloc(64 * 48);
  mvx = (int *)malloc(48 * sizeof(int));
  mvy = (int *)malloc(48 * sizeof(int));
  for (f = 0; f < 4; f++) {
    gen_frames(f + 11);
    total += motion_search();
  }
  print_str("h264 sad ");
  print_int(total);
  print_newline();
  return 0;
}
|}

let bench : Bench.t =
  Bench.mk "464h264ref" ~suite:Bench.CPU2006
    ~descr:
      "block motion estimation (SAD); search window clamped in-frame per \
       the paper's §5.1.2 fixes"
    [ Bench.src "h264ref" source ]
