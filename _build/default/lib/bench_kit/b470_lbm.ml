(** 470.lbm-like workload: lattice-Boltzmann stream-and-collide over a 3D
    grid flattened into one heap array (0%/0%). *)

let source =
  {|
long NX = 16;
long NY = 16;
long NZ = 8;
long Q = 5;

double *grid_a;
double *grid_b;

long idx(long x, long y, long z, long q) {
  return ((z * 16 + y) * 16 + x) * 5 + q;
}

void init_grid(void) {
  long x, y, z, q;
  grid_a = (double *)malloc(16 * 16 * 8 * 5 * sizeof(double));
  grid_b = (double *)malloc(16 * 16 * 8 * 5 * sizeof(double));
  for (z = 0; z < 8; z++) {
    for (y = 0; y < 16; y++) {
      for (x = 0; x < 16; x++) {
        for (q = 0; q < 5; q++) {
          grid_a[idx(x, y, z, q)] = 0.2 + 0.01 * (double)((x + y + z) % 5);
          grid_b[idx(x, y, z, q)] = 0.0;
        }
      }
    }
  }
}

void stream_collide(double *src, double *dst) {
  long x, y, z, q;
  for (z = 1; z < 7; z++) {
    for (y = 1; y < 15; y++) {
      for (x = 1; x < 15; x++) {
        double rho = 0.0;
        for (q = 0; q < 5; q++) rho += src[idx(x, y, z, q)];
        double eq = rho / 5.0;
        dst[idx(x, y, z, 0)] = src[idx(x, y, z, 0)] * 0.4 + eq * 0.6;
        dst[idx(x, y, z, 1)] = src[idx(x - 1, y, z, 1)] * 0.4 + eq * 0.6;
        dst[idx(x, y, z, 2)] = src[idx(x + 1, y, z, 2)] * 0.4 + eq * 0.6;
        dst[idx(x, y, z, 3)] = src[idx(x, y - 1, z, 3)] * 0.4 + eq * 0.6;
        dst[idx(x, y, z, 4)] = src[idx(x, y + 1, z, 4)] * 0.4 + eq * 0.6;
      }
    }
  }
}

int main(void) {
  long t;
  double mass = 0.0;
  long i;
  init_grid();
  for (t = 0; t < 10; t++) {
    if (t % 2 == 0) stream_collide(grid_a, grid_b);
    else stream_collide(grid_b, grid_a);
  }
  for (i = 0; i < 16 * 16 * 8 * 5; i++) mass += grid_a[i];
  print_str("lbm mass ");
  print_int((long)(mass * 100.0));
  print_newline();
  return 0;
}
|}

let bench : Bench.t =
  Bench.mk "470lbm" ~suite:Bench.CPU2006
    ~descr:"lattice-Boltzmann stream/collide on a flat heap grid (0%/0%)"
    [ Bench.src "lbm" source ]
