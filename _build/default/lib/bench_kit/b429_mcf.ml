(** 429.mcf-like workload: network simplex over one huge arc array.

    The defining property (§4.6): a single allocation larger than the
    largest low-fat region size (1 GiB) falls back to the standard
    allocator; every access through it has wide bounds under Low-Fat —
    the paper measures ~54% unchecked accesses on 429mcf.  SoftBound
    keeps exact bounds for it. *)

let source =
  {|
/* arcs: 1.5 GiB, beyond the largest low-fat size class of 2^30 */
long ARC_BYTES = 1610612736;
long N_NODES = 1500;

long *arcs;       /* huge: low-fat falls back to the standard allocator */
long *node_pot;   /* small: low-fat protected */
long *node_flow;

long arc_slot(long i) {
  /* spread accesses across the huge allocation, page-sparsely */
  return (i * 104729) % 201326592;
}

void init(void) {
  long i;
  arcs = (long *)malloc(ARC_BYTES);
  node_pot = (long *)malloc(N_NODES * sizeof(long));
  node_flow = (long *)malloc(N_NODES * sizeof(long));
  for (i = 0; i < N_NODES; i++) {
    node_pot[i] = i * 7 % 101;
    node_flow[i] = 0;
  }
  for (i = 0; i < 4000; i++) {
    arcs[arc_slot(i)] = i % 251;
  }
}

long price_out(long round) {
  long i;
  long reduced = 0;
  for (i = 0; i < 4000; i++) {
    long slot = arc_slot(i);
    long cost = arcs[slot] + arcs[slot + 1] - arcs[slot + 2] + arcs[slot + 3] % 3;
    long tail = (i * 13 + round) % 1500;
    long head = (i * 29 + round) % 1500;
    long rc = cost + node_pot[tail] - node_pot[head];
    if (rc < 0) {
      node_flow[tail] += 1;
      node_flow[head] -= 1;
      arcs[slot] = arcs[slot] + 1;
      arcs[slot + 1] = cost % 7;
      reduced++;
    }
  }
  return reduced;
}

void update_potentials(void) {
  long i;
  for (i = 0; i < N_NODES; i++) {
    node_pot[i] += node_flow[i] / 2;
    node_flow[i] = 0;
  }
}

int main(void) {
  long total = 0;
  long round;
  init();
  for (round = 0; round < 30; round++) {
    total += price_out(round);
    update_potentials();
  }
  print_str("mcf reduced ");
  print_int(total);
  print_newline();
  return 0;
}
|}

let bench : Bench.t =
  Bench.mk "429mcf" ~suite:Bench.CPU2006
    ~descr:
      "network simplex; one 1.5 GiB allocation exceeds the largest \
       low-fat region (wide bounds under Low-Fat, §4.6)"
    [ Bench.src "mcf" source ]
