(** Random memory-safe MiniC program generator for differential testing.

    Generated programs only access arrays through indices reduced modulo
    the array extent, so they are spatially safe by construction: the
    optimizer at any level and either instrumentation must produce
    exactly the same output as the naive -O0 build.  This is the property
    the test suite checks on hundreds of programs. *)

module Rng = Mi_support.Rng

type ctx = {
  rng : Rng.t;
  buf : Buffer.t;
  mutable n_locals : int;
  mutable n_funcs : int;
  scalars : string list ref;  (** assignable long variables in scope *)
  readonly : string list ref;
      (** readable but never assigned (loop counters: assigning one could
          make the loop diverge) *)
  arrays : (string * int) list ref;  (** array name, extent *)
  funcs : string list ref;  (** generated long(long) functions *)
}

let readable ctx = !(ctx.scalars) @ !(ctx.readonly)

let pf ctx fmt = Printf.ksprintf (Buffer.add_string ctx.buf) fmt

let fresh ctx stem =
  ctx.n_locals <- ctx.n_locals + 1;
  Printf.sprintf "%s%d" stem ctx.n_locals

let pick ctx l = List.nth l (Rng.int ctx.rng (List.length l))

(* an arithmetic expression over in-scope scalars and array reads *)
let rec gen_expr ctx depth : string =
  let leaf () =
    match Rng.int ctx.rng 4 with
    | 0 -> string_of_int (Rng.int_range ctx.rng (-20) 20)
    | 1 when readable ctx <> [] -> pick ctx (readable ctx)
    | 2 when !(ctx.arrays) <> [] ->
        let name, extent = pick ctx !(ctx.arrays) in
        let idx = gen_index ctx extent in
        Printf.sprintf "%s[%s]" name idx
    | _ -> string_of_int (Rng.int_range ctx.rng 1 9)
  in
  if depth <= 0 then leaf ()
  else
    match Rng.int ctx.rng 8 with
    | 0 | 1 ->
        Printf.sprintf "(%s + %s)" (gen_expr ctx (depth - 1))
          (gen_expr ctx (depth - 1))
    | 2 ->
        Printf.sprintf "(%s - %s)" (gen_expr ctx (depth - 1))
          (gen_expr ctx (depth - 1))
    | 3 ->
        Printf.sprintf "(%s * %s)"
          (gen_expr ctx (depth - 1))
          (string_of_int (Rng.int_range ctx.rng 1 5))
    | 4 ->
        (* division guarded against zero *)
        Printf.sprintf "(%s / %d)" (gen_expr ctx (depth - 1))
          (Rng.int_range ctx.rng 1 7)
    | 5 ->
        Printf.sprintf "(%s %% %d)" (gen_expr ctx (depth - 1))
          (Rng.int_range ctx.rng 2 17)
    | 6 when !(ctx.funcs) <> [] ->
        Printf.sprintf "%s(%s)" (pick ctx !(ctx.funcs))
          (gen_expr ctx (depth - 1))
    | _ -> leaf ()

(* always-in-bounds index *)
and gen_index ctx extent : string =
  let e = gen_expr ctx 1 in
  (* (e % extent + extent) % extent is non-negative and < extent *)
  Printf.sprintf "((%s %% %d + %d) %% %d)" e extent extent extent

let gen_stmt ctx ~indent ~in_loop:_ ~depth =
  let pad = String.make indent ' ' in
  match Rng.int ctx.rng 10 with
  | 0 | 1 ->
      let v = fresh ctx "v" in
      pf ctx "%slong %s = %s;\n" pad v (gen_expr ctx depth);
      ctx.scalars := v :: !(ctx.scalars)
  | 2 | 3 when !(ctx.scalars) <> [] ->
      pf ctx "%s%s = %s;\n" pad (pick ctx !(ctx.scalars)) (gen_expr ctx depth)
  | 4 | 5 when !(ctx.arrays) <> [] ->
      let name, extent = pick ctx !(ctx.arrays) in
      pf ctx "%s%s[%s] = %s;\n" pad name (gen_index ctx extent)
        (gen_expr ctx depth)
  | 6 when !(ctx.scalars) <> [] ->
      let s = pick ctx !(ctx.scalars) in
      pf ctx "%sif (%s > %s) { %s = %s - 1; } else { %s = %s + 2; }\n" pad s
        (gen_expr ctx 1) s s s s
  | 7 when !(ctx.scalars) <> [] ->
      pf ctx "%s%s += %s;\n" pad (pick ctx !(ctx.scalars)) (gen_expr ctx 1)
  | _ when !(ctx.scalars) <> [] ->
      pf ctx "%sacc += %s;\n" pad (pick ctx !(ctx.scalars))
  | _ -> pf ctx "%sacc += 1;\n" pad

let gen_loop ctx ~indent ~depth =
  let pad = String.make indent ' ' in
  let i = fresh ctx "i" in
  let n = Rng.int_range ctx.rng 2 12 in
  pf ctx "%slong %s;\n" pad i;
  pf ctx "%sfor (%s = 0; %s < %d; %s++) {\n" pad i i n i;
  (* the counter may be read but never assigned, and declarations inside
     the body go out of scope at the brace *)
  ctx.readonly := i :: !(ctx.readonly);
  let saved_scalars = !(ctx.scalars) in
  for _ = 1 to Rng.int_range ctx.rng 1 4 do
    gen_stmt ctx ~indent:(indent + 2) ~in_loop:true ~depth
  done;
  ctx.scalars := saved_scalars;
  ctx.readonly := List.tl !(ctx.readonly);
  pf ctx "%s}\n" pad

let gen_helper ctx =
  ctx.n_funcs <- ctx.n_funcs + 1;
  let name = Printf.sprintf "helper%d" ctx.n_funcs in
  pf ctx "long %s(long x) {\n" name;
  let saved_scalars = !(ctx.scalars) in
  ctx.scalars := [ "x" ];
  pf ctx "  long acc = x %% 100;\n";
  ctx.scalars := "acc" :: !(ctx.scalars);
  for _ = 1 to Rng.int_range ctx.rng 1 3 do
    gen_stmt ctx ~indent:2 ~in_loop:false ~depth:1
  done;
  pf ctx "  return acc;\n}\n\n";
  ctx.scalars := saved_scalars;
  ctx.funcs := name :: !(ctx.funcs)

(** Generate a self-contained, spatially-safe MiniC program. *)
let generate ~seed : string =
  let ctx =
    {
      rng = Rng.create seed;
      buf = Buffer.create 1024;
      n_locals = 0;
      n_funcs = 0;
      scalars = ref [];
      readonly = ref [];
      arrays = ref [];
      funcs = ref [];
    }
  in
  (* a couple of globals *)
  let n_globals = Rng.int_range ctx.rng 0 2 in
  for _ = 1 to n_globals do
    let g = fresh ctx "g" in
    let extent = Rng.int_range ctx.rng 4 16 in
    pf ctx "long %s[%d];\n" g extent;
    ctx.arrays := (g, extent) :: !(ctx.arrays)
  done;
  pf ctx "\n";
  for _ = 1 to Rng.int_range ctx.rng 0 2 do
    gen_helper ctx
  done;
  pf ctx "int main(void) {\n";
  pf ctx "  long acc = 0;\n";
  ctx.scalars := [ "acc" ];
  (* local and heap arrays *)
  let n_arrays = Rng.int_range ctx.rng 1 3 in
  for _ = 1 to n_arrays do
    let a = fresh ctx "a" in
    let extent = Rng.int_range ctx.rng 4 16 in
    (if Rng.bool ctx.rng then pf ctx "  long %s[%d];\n" a extent
     else
       pf ctx "  long *%s = (long *)malloc(%d * sizeof(long));\n" a extent);
    (* initialize so reads are deterministic *)
    let i = fresh ctx "ii" in
    pf ctx "  long %s;\n" i;
    pf ctx "  for (%s = 0; %s < %d; %s++) %s[%s] = %s * 3 + 1;\n" i i extent
      i a i i;
    ctx.arrays := (a, extent) :: !(ctx.arrays)
  done;
  for _ = 1 to Rng.int_range ctx.rng 2 6 do
    if Rng.int ctx.rng 3 = 0 then gen_loop ctx ~indent:2 ~depth:2
    else gen_stmt ctx ~indent:2 ~in_loop:false ~depth:2
  done;
  (* print a digest of all state *)
  pf ctx "  print_int(acc);\n";
  List.iter
    (fun (a, extent) ->
      let i = fresh ctx "k" in
      pf ctx "  { long %s; long h = 0;\n" i;
      pf ctx "    for (%s = 0; %s < %d; %s++) h = h * 31 + %s[%s];\n" i i
        extent i a i;
      pf ctx "    print_int(h %% 1000000007); }\n")
    !(ctx.arrays);
  List.iter (fun s -> pf ctx "  print_int(%s %% 997);\n" s) !(ctx.scalars);
  pf ctx "  return 0;\n}\n";
  Buffer.contents ctx.buf
