(** The 20-benchmark suite of the paper's runtime evaluation (§5.1.1):
    the C benchmarks of SPEC CPU2000/CPU2006 that execute successfully
    under both approaches, reproduced as synthetic MiniC workloads shaped
    after each benchmark's memory behaviour (see DESIGN.md). *)

let all : Bench.t list =
  [
    B164_gzip.bench;
    B177_mesa.bench;
    B179_art.bench;
    B181_mcf.bench;
    B183_equake.bench;
    B186_crafty.bench;
    B188_ammp.bench;
    B197_parser.bench;
    B256_bzip2.bench;
    B300_twolf.bench;
    B401_bzip2.bench;
    B429_mcf.bench;
    B433_milc.bench;
    B445_gobmk.bench;
    B456_hmmer.bench;
    B458_sjeng.bench;
    B462_libquantum.bench;
    B464_h264ref.bench;
    B470_lbm.bench;
    B482_sphinx3.bench;
  ]

let find name = List.find_opt (fun (b : Bench.t) -> b.name = name) all

let find_exn name =
  match find name with
  | Some b -> b
  | None -> invalid_arg ("unknown benchmark " ^ name)

let names = List.map (fun (b : Bench.t) -> b.name) all
