lib/bench_kit/paper_data.ml:
