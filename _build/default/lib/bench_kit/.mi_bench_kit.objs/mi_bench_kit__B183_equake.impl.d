lib/bench_kit/b183_equake.ml: Bench
