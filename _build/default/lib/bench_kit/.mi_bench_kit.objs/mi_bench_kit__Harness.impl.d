lib/bench_kit/harness.ml: Bench Hashtbl List Mi_core Mi_lowfat Mi_minic Mi_mir Mi_passes Mi_softbound Mi_vm Option Printf
