lib/bench_kit/b197_parser.ml: Bench
