lib/bench_kit/b464_h264ref.ml: Bench
