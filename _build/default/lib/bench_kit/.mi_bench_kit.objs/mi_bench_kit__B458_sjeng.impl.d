lib/bench_kit/b458_sjeng.ml: Bench
