lib/bench_kit/bench.ml: Mi_minic
