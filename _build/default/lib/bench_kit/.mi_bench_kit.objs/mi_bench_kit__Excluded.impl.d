lib/bench_kit/excluded.ml: Bench Usability
