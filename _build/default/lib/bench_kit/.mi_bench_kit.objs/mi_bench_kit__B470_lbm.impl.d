lib/bench_kit/b470_lbm.ml: Bench
