lib/bench_kit/experiments.ml: Bench Harness Hashtbl List Mi_core Mi_minic Mi_passes Mi_support Mi_vm Paper_data Printf String Suite
