lib/bench_kit/b181_mcf.ml: Bench
