lib/bench_kit/b188_ammp.ml: Bench
