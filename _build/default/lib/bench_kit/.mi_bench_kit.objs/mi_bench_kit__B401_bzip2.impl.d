lib/bench_kit/b401_bzip2.ml: Bench
