lib/bench_kit/b164_gzip.ml: Bench
