lib/bench_kit/b433_milc.ml: Bench
