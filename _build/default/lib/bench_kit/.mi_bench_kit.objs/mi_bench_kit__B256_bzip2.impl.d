lib/bench_kit/b256_bzip2.ml: Bench
