lib/bench_kit/b445_gobmk.ml: Bench
