lib/bench_kit/b186_crafty.ml: Bench
