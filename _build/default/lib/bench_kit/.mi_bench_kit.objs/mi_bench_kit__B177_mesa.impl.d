lib/bench_kit/b177_mesa.ml: Bench
