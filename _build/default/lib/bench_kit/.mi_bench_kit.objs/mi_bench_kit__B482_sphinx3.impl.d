lib/bench_kit/b482_sphinx3.ml: Bench
