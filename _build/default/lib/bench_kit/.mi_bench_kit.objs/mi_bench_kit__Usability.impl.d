lib/bench_kit/usability.ml: Bench Harness Mi_core Mi_minic Mi_passes Mi_vm
