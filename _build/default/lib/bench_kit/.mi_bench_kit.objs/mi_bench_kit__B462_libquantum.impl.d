lib/bench_kit/b462_libquantum.ml: Bench
