lib/bench_kit/b300_twolf.ml: Bench
