lib/bench_kit/b456_hmmer.ml: Bench
