lib/bench_kit/b179_art.ml: Bench
