lib/bench_kit/progen.ml: Buffer List Mi_support Printf String
