lib/bench_kit/b429_mcf.ml: Bench
