(** 256.bzip2-like workload (CPU2000): run-length encoding plus a
    Burrows-Wheeler-flavored sorting pass on heap blocks.  Clean pointer
    discipline: 0%/0% in Table 2, and the benchmark with the highest
    fraction of dominance-removable checks (~50%, §5.3) thanks to the
    repeated same-pointer accesses in the sort inner loop. *)

let source =
  {|
char *block;
int *ptrs;
long BSZ = 3000;

void fill_block(long seed) {
  long i;
  long x = seed;
  for (i = 0; i < 3000; i++) {
    x = (x * 1103515245 + 12345) % 2147483648;
    block[i] = (char)(97 + (x >> 16) % 4);
  }
}

long rle_pass(void) {
  long i = 0;
  long out = 0;
  while (i < 3000) {
    long run = 1;
    /* repeated accesses through the same pointer value: the dominated
       checks are removable (§5.3) */
    while (i + run < 3000 && block[i + run] == block[i] && run < 250) {
      run++;
    }
    out += (run >= 4) ? 2 : run;
    i += run;
  }
  return out;
}

long cmp_rot(long a, long b) {
  long k;
  for (k = 0; k < 24; k++) {
    long ca = block[(a + k) % 3000];
    long cb = block[(b + k) % 3000];
    if (ca != cb) return ca - cb;
  }
  return 0;
}

void sort_pass(void) {
  long i, j;
  for (i = 0; i < 160; i++) ptrs[i] = (int)(i * 17 % 3000);
  for (i = 1; i < 160; i++) {
    int v = ptrs[i];
    j = i - 1;
    while (j >= 0 && cmp_rot(ptrs[j], v) > 0) {
      ptrs[j + 1] = ptrs[j];
      j--;
    }
    ptrs[j + 1] = v;
  }
}

int main(void) {
  long round;
  long total = 0;
  block = (char *)malloc(3000);
  ptrs = (int *)malloc(160 * sizeof(int));
  for (round = 0; round < 5; round++) {
    fill_block(round + 7);
    total += rle_pass();
    sort_pass();
    total += ptrs[0] + ptrs[159];
  }
  print_str("bzip2 out ");
  print_int(total);
  print_newline();
  return 0;
}
|}

let bench : Bench.t =
  Bench.mk "256bzip2" ~suite:Bench.CPU2000
    ~descr:
      "RLE + BWT-style sort; repeated same-pointer accesses make ~half \
       the checks dominance-redundant (§5.3)"
    [ Bench.src "bzip2" source ]
