(** 197.parser-like workload: dictionary lookup and link grammar-ish
    scoring over tokenized sentences.

    Properties from the paper: tokenization goes through buffers owned by
    an external library unit that is not recompiled — their globals and
    stack are unprotected under Low-Fat (wide bounds, §4.3/§4.6: 7.14%),
    while the same buffers are declared *with* size so SoftBound keeps
    precise bounds.  A size-zero extern array is consulted rarely
    (SoftBound: 0.27%).  The known off-by-one the paper fixed (§5.1.2) is
    fixed here the same way. *)

let tokenlib_unit =
  {|
/* toklib.c: external library, NOT recompiled/instrumented */
char tok_buf[64];
long tok_len = 0;

void lib_tokenize(long seed, long k) {
  long x = (seed * 40503 + k * 97) % 2147483648;
  long len = 3 + (x % 6);
  long i;
  for (i = 0; i < len; i++) {
    x = (x * 1103515245 + 12345) % 2147483648;
    tok_buf[i] = (char)(97 + (x >> 12) % 26);
  }
  tok_buf[len] = (char)0;
  tok_len = len;
}
|}

let parser_unit =
  {|
/* parser.c: instrumented application code */
extern char tok_buf[64];
extern long tok_len;
extern int connector_cost[];   /* size-zero declaration, rarely used */

void lib_tokenize(long seed, long k);

struct entry { long hash; long count; };

struct entry dict[4096];
long link_strength[256];

long hash_token(void) {
  long h = 5381;
  long i;
  for (i = 0; i < tok_len; i++) {
    h = h * 33 + tok_buf[i];
  }
  if (h < 0) h = -h;
  return h;
}

long dict_add(long h) {
  long slot = h % 4096;
  long probes = 0;
  while (probes < 4096) {
    if (dict[slot].count == 0 || dict[slot].hash == h) {
      dict[slot].hash = h;
      dict[slot].count += 1;
      return dict[slot].count;
    }
    slot = (slot + 1) % 4096;
    probes++;
  }
  return 0;
}

long link_score(long h) {
  /* linkage scoring over the (precisely bounded) strength table */
  long j;
  long s = 0;
  for (j = 0; j < 26; j++) {
    long idx = (h + j * 7) % 256;
    s += link_strength[idx];
    link_strength[idx] = (link_strength[idx] + 1) % 97;
  }
  return s;
}

long parse_sentence(long seed, long words) {
  long k;
  long score = 0;
  for (k = 0; k < words; k++) {
    /* vocabulary repeats across sentences, so dictionary hits reach
       count 3 and consult the size-zero connector table occasionally */
    lib_tokenize(seed % 12, k);
    long h = hash_token();
    long c = dict_add(h);
    score += c + link_score(h) % 5;
    if (c == 3) {
      /* rare: consult the size-zero cost table */
      score += connector_cost[h % 32];
    }
  }
  return score;
}

int main(void) {
  long s;
  long total = 0;
  for (s = 0; s < 60; s++) {
    total += parse_sentence(s, 40);
  }
  print_str("parser score ");
  print_int(total);
  print_newline();
  return 0;
}
|}

let cost_unit =
  {|
/* costs.c: defines the table the parser declares size-less */
int connector_cost[32] = {1, 2, 1, 3, 1, 2, 4, 1,
                          2, 1, 1, 2, 3, 1, 2, 1,
                          1, 3, 2, 1, 4, 1, 1, 2,
                          2, 1, 3, 1, 1, 2, 1, 5};
|}

let bench : Bench.t =
  Bench.mk "197parser" ~suite:Bench.CPU2000 ~size_zero_arrays:true
    ~descr:
      "dictionary parser; tokenization in an uninstrumented library \
       (Low-Fat wide) plus a rarely-used size-zero table (SoftBound wide)"
    [
      Bench.src ~instrument:false "toklib" tokenlib_unit;
      Bench.src "parser" parser_unit;
      Bench.src "costs" cost_unit;
    ]
