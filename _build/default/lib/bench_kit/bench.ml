(** Benchmark descriptions.

    Each benchmark is a set of MiniC translation units compiled
    *separately* (each unit runs through the pass pipeline and, when
    flagged, the instrumentation on its own) and linked afterwards —
    mirroring the paper's setup (Fig. 8).  Units with [instrument =
    false] model external libraries that are not recompiled (§4.3). *)

type source = {
  src_name : string;
  code : string;  (** MiniC *)
  instrument : bool;
  mode_override : Mi_minic.Lower.mode option;
      (** compile this unit with a different lowering (e.g. the
          pointer-as-i64 lowering of Fig. 7, as if built by another
          compiler version) *)
}

type suite = CPU2000 | CPU2006

type t = {
  name : string;  (** the SPEC benchmark the program is shaped after *)
  suite : suite;
  descr : string;
  sources : source list;
  size_zero_arrays : bool;
      (** uses C's size-less extern array declarations (bold in Table 2) *)
  expect_output : string option;
      (** expected program output, for semantic-preservation checks *)
}

let src ?(instrument = true) ?mode_override name code =
  { src_name = name; code; instrument; mode_override }

let mk ?(size_zero_arrays = false) ?expect_output ~suite ~descr name sources =
  { name; suite; descr; sources; size_zero_arrays; expect_output }

let suite_name = function CPU2000 -> "CPU2000" | CPU2006 -> "CPU2006"
