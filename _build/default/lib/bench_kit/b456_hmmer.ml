(** 456.hmmer-like workload: profile HMM Viterbi dynamic programming; a
    size-zero extern null-model table is consulted once per sequence
    (SoftBound: 0.00% — present but below rounding). *)

let nullmodel_unit =
  {|
int null_model[32] = {1, 1, 2, 1, 1, 2, 1, 3, 1, 1, 2, 1, 1, 1, 2, 1,
                      1, 2, 1, 1, 3, 1, 1, 2, 1, 1, 1, 2, 1, 1, 2, 1};
|}

let hmmer_unit =
  {|
extern int null_model[];   /* size-zero declaration, one use per seq */

long M = 48;      /* model length */
long L = 60;      /* sequence length */

int *match_sc;
int *ins_sc;
int *dp;

void init_model(void) {
  long i;
  match_sc = (int *)malloc(48 * 20 * sizeof(int));
  ins_sc = (int *)malloc(48 * sizeof(int));
  dp = (int *)malloc((60 + 1) * (48 + 1) * sizeof(int));
  for (i = 0; i < 48 * 20; i++) match_sc[i] = (int)((i * 37) % 11) - 3;
  for (i = 0; i < 48; i++) ins_sc[i] = -1 - (int)(i % 2);
}

long viterbi(long seed) {
  long i, k;
  long cols = 48 + 1;
  for (k = 0; k <= 48; k++) dp[k] = 0;
  for (i = 1; i <= 60; i++) {
    long sym = (seed * 31 + i * 7) % 20;
    dp[i * cols] = 0;
    for (k = 1; k <= 48; k++) {
      long diag = dp[(i - 1) * cols + (k - 1)] + match_sc[(k - 1) * 20 + sym];
      long up = dp[(i - 1) * cols + k] + ins_sc[k - 1];
      long left = dp[i * cols + (k - 1)] - 2;
      long best = diag;
      if (up > best) best = up;
      if (left > best) best = left;
      if (best < 0) best = 0;
      dp[i * cols + k] = (int)best;
    }
  }
  long best = 0;
  for (k = 0; k <= 48; k++) {
    if (dp[60 * cols + k] > best) best = dp[60 * cols + k];
  }
  return best - null_model[seed % 32];
}

int main(void) {
  long s;
  long total = 0;
  init_model();
  for (s = 0; s < 40; s++) {
    total += viterbi(s);
  }
  print_str("hmmer score ");
  print_int(total);
  print_newline();
  return 0;
}
|}

let bench : Bench.t =
  Bench.mk "456hmmer" ~suite:Bench.CPU2006 ~size_zero_arrays:true
    ~descr:
      "profile-HMM Viterbi DP; size-zero null-model table touched once \
       per sequence (SoftBound: 0.00%, below rounding)"
    [ Bench.src "hmmer" hmmer_unit; Bench.src "nullmodel" nullmodel_unit ]
