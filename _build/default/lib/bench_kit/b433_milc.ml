(** 433.milc-like workload: SU(3)-flavored complex arithmetic on a 4D
    lattice.

    Declares a size-zero extern array (bold in Table 2) that the workload
    never touches at runtime — the paper notes 433milc is the one
    benchmark where the declaration exists but causes zero wide accesses
    ("declared, but not used in the benchmark run"). *)

let source =
  {|
extern double spare_lattice[];   /* declared, never accessed at runtime */

double *re;
double *im;
long VOL = 2048;

void init_lattice(void) {
  long i;
  re = (double *)malloc(2048 * sizeof(double));
  im = (double *)malloc(2048 * sizeof(double));
  for (i = 0; i < 2048; i++) {
    re[i] = (double)((i * 31) % 17) * 0.125;
    im[i] = (double)((i * 53) % 13) * 0.25;
  }
}

void mult_su3(long off) {
  long i;
  for (i = 0; i < 2048; i++) {
    long j = (i + off) % 2048;
    double a = re[i] * re[j] - im[i] * im[j];
    double b = re[i] * im[j] + im[i] * re[j];
    re[i] = 0.5 * re[i] + 0.5 * a;
    im[i] = 0.5 * im[i] + 0.5 * b;
  }
}

int main(void) {
  long it;
  long i;
  double s = 0.0;
  init_lattice();
  for (it = 0; it < 60; it++) {
    mult_su3(it * 7 + 1);
  }
  for (i = 0; i < 2048; i++) s += re[i] + im[i];
  if (s < 0.0) {
    /* never true for this input; keeps the extern alive in the IR */
    print_f64(spare_lattice[0]);
  }
  print_str("milc sum ");
  print_int((long)(s * 1000.0) % 1000000);
  print_newline();
  return 0;
}
|}

let spare_unit = {|
double spare_lattice[64];
|}

let bench : Bench.t =
  Bench.mk "433milc" ~suite:Bench.CPU2006 ~size_zero_arrays:true
    ~descr:
      "lattice QCD-style complex arithmetic; a size-zero extern array is \
       declared but never accessed (0.00%* despite the declaration)"
    [ Bench.src "milc" source; Bench.src "spare" spare_unit ]
