(** 183.equake-like workload: sparse matrix-vector products where the hot
    loop loads row pointers from memory.

    This is the benchmark the paper uses to explain why SoftBound can lose
    against Low-Fat (§5.2): every iteration loads a [double *] from the
    row-pointer array, forcing SoftBound to look bounds up in the trie,
    while Low-Fat merely recomputes the base by masking. *)

let source =
  {|
long N = 320;
long NNZ = 9;

/* ragged sparse matrix, like equake's K[col][3][3] blocks: each nonzero
   is a separately allocated 3-vector reached through a pointer that must
   be loaded inside the innermost loop */
double ***rows;    /* rows[i][k] -> 3-element block */
int **cols;
double *x;
double *y;

void build(long n) {
  long i, k, c;
  rows = (double ***)malloc(n * sizeof(double **));
  cols = (int **)malloc(n * sizeof(int *));
  x = (double *)malloc(n * sizeof(double));
  y = (double *)malloc(n * sizeof(double));
  for (i = 0; i < n; i++) {
    double **blocks = (double **)malloc(9 * sizeof(double *));
    int *idx = (int *)malloc(9 * sizeof(int));
    for (k = 0; k < 9; k++) {
      double *blk = (double *)malloc(3 * sizeof(double));
      for (c = 0; c < 3; c++) {
        blk[c] = (double)((i * 9 + k + c) % 17) * 0.125 + 0.25;
      }
      blocks[k] = blk;
      idx[k] = (int)((i * 37 + k * 61) % n);
    }
    rows[i] = blocks;
    cols[i] = idx;
    x[i] = 1.0 + (double)(i % 5) * 0.125;
    y[i] = 0.0;
  }
}

void smvp(long n) {
  long i, k;
  for (i = 0; i < n; i++) {
    double **blocks = rows[i];   /* pointer load per row */
    int *idx = cols[i];
    double acc = 0.0;
    for (k = 0; k < 9; k++) {
      double *blk = blocks[k];   /* pointer load per nonzero: SoftBound
                                    hits the trie here every iteration */
      acc += (blk[0] + blk[1] * 0.5 + blk[2] * 0.25) * x[idx[k]];
    }
    y[i] += acc;
  }
}

void relax(long n) {
  long i;
  for (i = 0; i < n; i++) {
    x[i] = 0.9 * x[i] + 0.1 * y[i];
    y[i] = 0.0;
  }
}

int main(void) {
  long iter;
  double checksum = 0.0;
  long i;
  build(N);
  for (iter = 0; iter < 40; iter++) {
    smvp(N);
    relax(N);
  }
  for (i = 0; i < N; i++) checksum += x[i];
  print_str("equake checksum ");
  print_int((long)(checksum * 100.0));
  print_newline();
  return 0;
}
|}

let bench : Bench.t =
  Bench.mk "183equake" ~suite:Bench.CPU2000
    ~descr:
      "sparse matrix-vector kernel; hot loop loads row pointers from \
       memory (SoftBound trie lookups dominate, §5.2)"
    [ Bench.src "equake" source ]
