(** 179.art-like workload: adaptive resonance theory neural network
    (float-heavy, clean pointer discipline: 0% wide for both). *)

let source =
  {|
long F1 = 100;
long F2 = 24;

double *weights;    /* F2 x F1 */
double *input;
double *activation;

void init_net(void) {
  long i;
  weights = (double *)malloc(24 * 100 * sizeof(double));
  input = (double *)malloc(100 * sizeof(double));
  activation = (double *)malloc(24 * sizeof(double));
  for (i = 0; i < 24 * 100; i++) {
    weights[i] = 1.0 / (1.0 + (double)(i % 11));
  }
}

void present(long pat) {
  long i;
  for (i = 0; i < 100; i++) {
    input[i] = (double)(((i * 7 + pat * 13) % 10)) * 0.1;
  }
}

long winner(void) {
  long j, i;
  long best = 0;
  double bestv = -1.0;
  for (j = 0; j < 24; j++) {
    double s = 0.0;
    double *w = weights + j * 100;
    for (i = 0; i < 100; i++) {
      s += w[i] * input[i];
    }
    activation[j] = s;
    if (s > bestv) { bestv = s; best = j; }
  }
  return best;
}

void learn(long j) {
  long i;
  double *w = weights + j * 100;
  for (i = 0; i < 100; i++) {
    w[i] = 0.9 * w[i] + 0.1 * input[i];
  }
}

int main(void) {
  long pat;
  long hist = 0;
  init_net();
  for (pat = 0; pat < 150; pat++) {
    present(pat);
    long j = winner();
    learn(j);
    hist += j;
  }
  print_str("art winners ");
  print_int(hist);
  print_newline();
  return 0;
}
|}

let bench : Bench.t =
  Bench.mk "179art" ~suite:Bench.CPU2000
    ~descr:"neural-network pattern matcher; fully precise bounds (0%/0%)"
    [ Bench.src "art" source ]
