(** 181.mcf-like workload (CPU2000): shortest augmenting paths on a small
    network.

    The original stored a pointer in a [long] struct member, casting on
    every use — outdated SoftBound metadata and spurious reports (§4.4).
    The paper changed the member to a proper pointer type and dropped the
    casts (§5.1.2); this version ships that fix.  The unfixed variant is
    in the usability corpus. *)

let source =
  {|
struct node {
  long potential;
  long dist;
  struct node *parent;   /* the §5.1.2 fix: proper pointer type */
  long visited;
};

struct node *nodes;
long N = 220;

long edge_cost(long a, long b) {
  long x = a * 31 + b * 17;
  return 1 + (x % 19);
}

void init(void) {
  long i;
  nodes = (struct node *)malloc(220 * sizeof(struct node));
  for (i = 0; i < 220; i++) {
    nodes[i].potential = i % 7;
    nodes[i].dist = 1000000;
    nodes[i].parent = NULL;
    nodes[i].visited = 0;
  }
}

long relax_all(long src) {
  long rounds = 0;
  long i;
  for (i = 0; i < 220; i++) {
    nodes[i].dist = 1000000;
    nodes[i].parent = NULL;
    nodes[i].visited = 0;
  }
  nodes[src].dist = 0;
  long changed = 1;
  while (changed && rounds < 12) {
    changed = 0;
    for (i = 0; i < 220; i++) {
      long j = (i * 13 + src) % 220;
      long k = (i * 7 + 3) % 220;
      long c = edge_cost(j, k);
      if (nodes[j].dist + c < nodes[k].dist) {
        nodes[k].dist = nodes[j].dist + c;
        nodes[k].parent = &nodes[j];
        changed = 1;
      }
    }
    rounds++;
  }
  return rounds;
}

long path_len(long v) {
  long len = 0;
  struct node *p = &nodes[v];
  while (p && len < 250) {
    p = p->parent;     /* follow in-memory pointers */
    len++;
  }
  return len;
}

int main(void) {
  long s;
  long total = 0;
  init();
  for (s = 0; s < 40; s++) {
    total += relax_all(s % 11);
    total += path_len((s * 29) % 220);
  }
  print_str("mcf2000 total ");
  print_int(total);
  print_newline();
  return 0;
}
|}

let bench : Bench.t =
  Bench.mk "181mcf" ~suite:Bench.CPU2000
    ~descr:
      "augmenting-path network solver; the pointer-in-integer struct \
       member is fixed to a proper pointer type (§5.1.2)"
    [ Bench.src "mcf2000" source ]
