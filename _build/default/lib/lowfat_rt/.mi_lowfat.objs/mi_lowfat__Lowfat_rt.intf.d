lib/lowfat_rt/lowfat_rt.mli: Mi_vm State
