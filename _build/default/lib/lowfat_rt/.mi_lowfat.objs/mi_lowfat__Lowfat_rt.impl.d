lib/lowfat_rt/lowfat_rt.ml: Array Cost Hashtbl List Mi_mir Mi_support Mi_vm Printf State
