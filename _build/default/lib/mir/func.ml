(** MIR functions.

    Blocks are kept in a list with the entry block first.  [next_id] is the
    source of fresh SSA ids; passes that create values must allocate ids
    through {!fresh_var} so ids stay unique within the function. *)

type t = {
  fname : string;
  params : Value.var list;
  ret_ty : Ty.t option;
  mutable blocks : Block.t list;  (** entry block first; empty iff external *)
  mutable next_id : int;
  is_external : bool;
      (** declaration only: body lives in an uninstrumented library or the
          runtime; calls to it dispatch to the VM's builtin table *)
}

let mk ?(is_external = false) ~name ~params ~ret_ty blocks =
  let max_id =
    List.fold_left
      (fun acc (b : Block.t) ->
        List.fold_left
          (fun acc (v : Value.var) -> max acc v.vid)
          acc (Block.defs b))
      (List.fold_left (fun acc (v : Value.var) -> max acc v.vid) (-1) params)
      blocks
  in
  { fname = name; params; ret_ty; blocks; next_id = max_id + 1; is_external }

let entry f =
  match f.blocks with
  | [] -> invalid_arg ("Func.entry: external function " ^ f.fname)
  | b :: _ -> b

(** Allocate a fresh SSA variable of type [ty]. *)
let fresh_var f ?(name = "t") ty : Value.var =
  let id = f.next_id in
  f.next_id <- id + 1;
  { Value.vid = id; vname = name; vty = ty }

let find_block f label =
  List.find_opt (fun (b : Block.t) -> String.equal b.label label) f.blocks

let find_block_exn f label =
  match find_block f label with
  | Some b -> b
  | None -> invalid_arg (Printf.sprintf "no block %s in %s" label f.fname)

(** Replace the block with the same label as [b] by [b]. *)
let update_block f (b : Block.t) =
  f.blocks <-
    List.map
      (fun (b' : Block.t) -> if String.equal b'.label b.label then b else b')
      f.blocks

(** Iterate over all instructions with their containing block. *)
let iter_instrs f g =
  List.iter
    (fun (b : Block.t) -> List.iter (fun i -> g b i) b.body)
    f.blocks

(** Number of instructions (not counting phis and terminators). *)
let instr_count f =
  List.fold_left (fun acc (b : Block.t) -> acc + List.length b.body) 0 f.blocks

(** All SSA definitions in the function: params, phis, instruction results. *)
let all_defs f =
  f.params
  @ List.concat_map Block.defs f.blocks
