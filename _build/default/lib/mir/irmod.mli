(** MIR modules (translation units): globals and functions — the unit the
    instrumentation pass operates on, mirroring LLVM's module passes. *)

(** One field of a global initializer, laid out in order. *)
type gfield =
  | GBytes of string  (** raw little-endian bytes *)
  | GPtr of string  (** 8-byte address of another global, patched at load *)
  | GZero of int  (** [n] zero bytes *)

type global = {
  gname : string;
  gsize : int;  (** declared size in bytes; 0 for size-zero extern decls *)
  galign : int;
  gfields : gfield list;  (** empty for extern declarations *)
  gextern : bool;
      (** declared here, defined in another (possibly uninstrumented)
          translation unit *)
  gsize_known : bool;
      (** false for C's [extern int a[];] — the size-zero declarations of
          §4.3/§4.6 that force SoftBound to wide bounds *)
}

type t = {
  mname : string;
  mutable globals : global list;
  mutable funcs : Func.t list;
}

val mk : ?globals:global list -> ?funcs:Func.t list -> string -> t

val field_size : gfield -> int
val fields_size : gfield list -> int

val mk_global :
  ?align:int ->
  ?extern:bool ->
  ?size_known:bool ->
  name:string ->
  size:int ->
  gfield list ->
  global
(** Checks that the initializer fields sum to the declared size. *)

val find_func : t -> string -> Func.t option
val find_func_exn : t -> string -> Func.t
val find_global : t -> string -> global option
val add_func : t -> Func.t -> unit
val add_global : t -> global -> unit

val defined_funcs : t -> Func.t list
(** Functions with a body (subject to instrumentation/optimization). *)

val instr_count : t -> int
