(** Basic blocks: a label, phi nodes, a straight-line body, a terminator. *)

type t = {
  label : string;
  phis : Instr.phi list;
  body : Instr.t list;
  term : Instr.term;
}

let mk ?(phis = []) ?(body = []) ~term label = { label; phis; body; term }

(** All variables defined by this block (phi and instruction results). *)
let defs b =
  List.map (fun (p : Instr.phi) -> p.pdst) b.phis
  @ List.filter_map (fun (i : Instr.t) -> i.dst) b.body

(** Rewrite every operand in the block (phi incoming values, instruction
    operands, terminator operands) with [f]. *)
let map_operands f b =
  {
    b with
    phis =
      List.map
        (fun (p : Instr.phi) ->
          { p with incoming = List.map (fun (l, v) -> (l, f v)) p.incoming })
        b.phis;
    body = List.map (Instr.map_operands f) b.body;
    term = Instr.map_term_operands f b.term;
  }

(** Rename branch targets and phi predecessor labels with [f]. *)
let map_labels f b =
  let term : Instr.term =
    match b.term with
    | Br l -> Br (f l)
    | Cbr (c, l1, l2) -> Cbr (c, f l1, f l2)
    | (Ret _ | Unreachable) as t -> t
  in
  {
    b with
    phis =
      List.map
        (fun (p : Instr.phi) ->
          { p with incoming = List.map (fun (l, v) -> (f l, v)) p.incoming })
        b.phis;
    term;
  }
