(** Evaluation of MIR arithmetic, shared by the VM interpreter and the
    constant-folding passes so both agree exactly.

    Integer representation: a value of type [iW] with [W <= 32] is kept in
    canonical signed form (sign-extended into the OCaml int).  [i64] and
    [ptr] values are OCaml native ints; since OCaml ints are 63 bits wide,
    [i64] arithmetic wraps at 63 rather than 64 bits.  This is a documented
    substrate simplification (see DESIGN.md): addresses stay far below
    2^47, and the benchmark programs do not rely on 64-bit wraparound. *)

exception Div_by_zero
(** Raised on [sdiv]/[udiv]/[srem]/[urem] with zero divisor — undefined
    behavior in C; the VM turns it into a runtime error report. *)

(* Canonicalize [x] as a value of integer type [ty]: truncate and
   sign-extend for sub-64-bit widths. *)
let normalize (ty : Ty.t) x =
  match ty with
  | I1 -> x land 1
  | I8 -> (x land 0xff) - (if x land 0x80 <> 0 then 0x100 else 0)
  | I16 -> (x land 0xffff) - (if x land 0x8000 <> 0 then 0x10000 else 0)
  | I32 ->
      (x land 0xffffffff)
      - (if x land 0x80000000 <> 0 then 0x100000000 else 0)
  | I64 | Ptr -> x
  | F64 -> invalid_arg "Eval.normalize: float type"

(* Unsigned view of a canonical value of type [ty] (for [ty] <> I64/Ptr). *)
let unsigned (ty : Ty.t) x =
  match ty with
  | I1 -> x land 1
  | I8 -> x land 0xff
  | I16 -> x land 0xffff
  | I32 -> x land 0xffffffff
  | I64 | Ptr | F64 -> invalid_arg "Eval.unsigned: wide type"

(* Unsigned comparison of native ints viewed as 63-bit unsigned values. *)
let ucmp_native a b = compare (a lxor min_int) (b lxor min_int)

let binop (op : Instr.binop) (ty : Ty.t) a b =
  let n = normalize ty in
  match op with
  | Add -> n (a + b)
  | Sub -> n (a - b)
  | Mul -> n (a * b)
  | SDiv ->
      if b = 0 then raise Div_by_zero;
      n (a / b)
  | SRem ->
      if b = 0 then raise Div_by_zero;
      n (a mod b)
  | UDiv ->
      if b = 0 then raise Div_by_zero;
      if ty = Ty.I64 || ty = Ty.Ptr then
        (* 63-bit unsigned division via Int64 *)
        Int64.to_int
          (Int64.unsigned_div (Int64.of_int a) (Int64.of_int b))
      else n (unsigned ty a / unsigned ty b)
  | URem ->
      if b = 0 then raise Div_by_zero;
      if ty = Ty.I64 || ty = Ty.Ptr then
        Int64.to_int
          (Int64.unsigned_rem (Int64.of_int a) (Int64.of_int b))
      else n (unsigned ty a mod unsigned ty b)
  | Shl -> n (a lsl (b land 63))
  | LShr ->
      if ty = Ty.I64 || ty = Ty.Ptr then (a lsr (b land 63)) land max_int
      else n (unsigned ty a lsr (b land 63))
  | AShr -> n (a asr (b land 63))
  | And -> n (a land b)
  | Or -> n (a lor b)
  | Xor -> n (a lxor b)

let fbinop (op : Instr.fbinop) a b =
  match op with
  | FAdd -> a +. b
  | FSub -> a -. b
  | FMul -> a *. b
  | FDiv -> a /. b

let icmp (op : Instr.icmp) (ty : Ty.t) a b =
  let u x =
    match ty with Ty.I64 | Ty.Ptr -> x | _ -> unsigned ty x
  in
  let r =
    match op with
    | Eq -> a = b
    | Ne -> a <> b
    | Slt -> a < b
    | Sle -> a <= b
    | Sgt -> a > b
    | Sge -> a >= b
    | Ult ->
        if ty = Ty.I64 || ty = Ty.Ptr then ucmp_native a b < 0
        else u a < u b
    | Ule ->
        if ty = Ty.I64 || ty = Ty.Ptr then ucmp_native a b <= 0
        else u a <= u b
    | Ugt ->
        if ty = Ty.I64 || ty = Ty.Ptr then ucmp_native a b > 0
        else u a > u b
    | Uge ->
        if ty = Ty.I64 || ty = Ty.Ptr then ucmp_native a b >= 0
        else u a >= u b
  in
  if r then 1 else 0

let fcmp (op : Instr.fcmp) a b =
  let r =
    match op with
    | FEq -> a = b
    | FNe -> a <> b
    | FLt -> a < b
    | FLe -> a <= b
    | FGt -> a > b
    | FGe -> a >= b
  in
  if r then 1 else 0

(* Integer-to-integer / pointer casts on canonical representations. *)
let cast_int (c : Instr.cast) (from_ty : Ty.t) (to_ty : Ty.t) x =
  match c with
  | Zext -> normalize to_ty (unsigned from_ty x)
  | Sext -> normalize to_ty x (* already sign-extended canonically *)
  | Trunc -> normalize to_ty x
  | IntToPtr | PtrToInt | Bitcast -> x
  | SiToFp | FpToSi -> invalid_arg "Eval.cast_int: float cast"
