(** First-order types of the MIR.

    The MIR is a small LLVM-like SSA IR.  Like recent LLVM, pointers are
    opaque ([Ptr]); element types appear only as access widths on loads,
    stores, and as strides on [gep]s.  Aggregates exist only in memory —
    the frontend lowers all struct/array accesses to address arithmetic. *)

type t =
  | I1  (** booleans, as produced by comparisons *)
  | I8
  | I16
  | I32
  | I64
  | F64
  | Ptr  (** opaque 64-bit pointer *)

let equal (a : t) (b : t) = a = b

(** Byte size of a value of this type as stored in memory. *)
let size_of = function
  | I1 | I8 -> 1
  | I16 -> 2
  | I32 -> 4
  | I64 | F64 | Ptr -> 8

(** Natural alignment; equals the size for all MIR types. *)
let align_of t = size_of t

let is_int = function I1 | I8 | I16 | I32 | I64 -> true | F64 | Ptr -> false
let is_float = function F64 -> true | _ -> false
let is_ptr = function Ptr -> true | _ -> false

(** Bit width of an integer type. *)
let bits = function
  | I1 -> 1
  | I8 -> 8
  | I16 -> 16
  | I32 -> 32
  | I64 -> 64
  | F64 | Ptr -> invalid_arg "Ty.bits: not an integer type"

let to_string = function
  | I1 -> "i1"
  | I8 -> "i8"
  | I16 -> "i16"
  | I32 -> "i32"
  | I64 -> "i64"
  | F64 -> "f64"
  | Ptr -> "ptr"

let of_string = function
  | "i1" -> Some I1
  | "i8" -> Some I8
  | "i16" -> Some I16
  | "i32" -> Some I32
  | "i64" -> Some I64
  | "f64" -> Some F64
  | "ptr" -> Some Ptr
  | _ -> None

let pp fmt t = Format.pp_print_string fmt (to_string t)
