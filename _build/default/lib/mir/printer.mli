(** Textual form of MIR modules.  The syntax round-trips through
    {!Parser}: for every module [m], [Parser.parse_module
    (Printer.module_to_string m)] succeeds and prints back identically —
    checked by property tests. *)

val value_str : Value.t -> string
val instr_to_string : Instr.t -> string
val func_to_string : Func.t -> string
val module_to_string : Irmod.t -> string

val escape_bytes : string -> string
(** The escaping used inside [bytes "..."] initializer fields. *)

val pp_func : Format.formatter -> Func.t -> unit
val pp_module : Format.formatter -> Irmod.t -> unit
