(** MIR instructions, phi nodes, and block terminators. *)

type binop =
  | Add
  | Sub
  | Mul
  | SDiv
  | UDiv
  | SRem
  | URem
  | Shl
  | LShr
  | AShr
  | And
  | Or
  | Xor

type fbinop = FAdd | FSub | FMul | FDiv

type icmp = Eq | Ne | Slt | Sle | Sgt | Sge | Ult | Ule | Ugt | Uge

type fcmp = FEq | FNe | FLt | FLe | FGt | FGe

(** Casts carry both source and destination types. [Bitcast] reinterprets
    bits between same-sized types (e.g. [i64]<->[f64]); [IntToPtr] and
    [PtrToInt] are the casts §4.4 of the paper discusses. *)
type cast = Zext | Sext | Trunc | Bitcast | IntToPtr | PtrToInt | SiToFp | FpToSi

(** One scaled index of a [gep]: contributes [stride * idx] bytes. *)
type gep_index = { stride : int; idx : Value.t }

type op =
  | Bin of binop * Ty.t * Value.t * Value.t
  | FBin of fbinop * Value.t * Value.t
  | Icmp of icmp * Ty.t * Value.t * Value.t
  | Fcmp of fcmp * Value.t * Value.t
  | Cast of cast * Ty.t * Value.t * Ty.t  (** from-type, value, to-type *)
  | Load of Ty.t * Value.t  (** [Load (ty, addr)] *)
  | Store of Ty.t * Value.t * Value.t  (** [Store (ty, value, addr)] *)
  | Gep of Value.t * gep_index list  (** base address + scaled indices *)
  | Select of Ty.t * Value.t * Value.t * Value.t  (** cond, if-true, if-false *)
  | Call of string * Value.t list  (** direct call; result in [dst] *)
  | Alloca of { size : int; align : int }  (** stack allocation, bytes *)
  | Memcpy of Value.t * Value.t * Value.t  (** dst, src, len-bytes *)
  | Memset of Value.t * Value.t * Value.t  (** dst, byte, len-bytes *)

type t = { dst : Value.var option; op : op }

type phi = { pdst : Value.var; incoming : (string * Value.t) list }
(** [incoming] pairs a predecessor block label with the value flowing in
    along that edge. *)

type term =
  | Ret of Value.t option
  | Br of string
  | Cbr of Value.t * string * string  (** cond, then-label, else-label *)
  | Unreachable

let mk ?dst op : t = { dst; op }

(** Operand values read by an instruction (not including the destination). *)
let operands (i : t) : Value.t list =
  match i.op with
  | Bin (_, _, a, b) | Icmp (_, _, a, b) | FBin (_, a, b) | Fcmp (_, a, b) ->
      [ a; b ]
  | Cast (_, _, v, _) -> [ v ]
  | Load (_, addr) -> [ addr ]
  | Store (_, v, addr) -> [ v; addr ]
  | Gep (base, idxs) -> base :: List.map (fun gi -> gi.idx) idxs
  | Select (_, c, a, b) -> [ c; a; b ]
  | Call (_, args) -> args
  | Alloca _ -> []
  | Memcpy (a, b, c) | Memset (a, b, c) -> [ a; b; c ]

(** Rewrite every operand of [i] with [f]. *)
let map_operands f (i : t) : t =
  let op =
    match i.op with
    | Bin (o, ty, a, b) -> Bin (o, ty, f a, f b)
    | FBin (o, a, b) -> FBin (o, f a, f b)
    | Icmp (o, ty, a, b) -> Icmp (o, ty, f a, f b)
    | Fcmp (o, a, b) -> Fcmp (o, f a, f b)
    | Cast (c, t1, v, t2) -> Cast (c, t1, f v, t2)
    | Load (ty, addr) -> Load (ty, f addr)
    | Store (ty, v, addr) -> Store (ty, f v, f addr)
    | Gep (base, idxs) ->
        Gep (f base, List.map (fun gi -> { gi with idx = f gi.idx }) idxs)
    | Select (ty, c, a, b) -> Select (ty, f c, f a, f b)
    | Call (callee, args) -> Call (callee, List.map f args)
    | Alloca a -> Alloca a
    | Memcpy (a, b, c) -> Memcpy (f a, f b, f c)
    | Memset (a, b, c) -> Memset (f a, f b, f c)
  in
  { i with op }

let map_term_operands f (t : term) : term =
  match t with
  | Ret (Some v) -> Ret (Some (f v))
  | Ret None | Unreachable | Br _ -> t
  | Cbr (c, l1, l2) -> Cbr (f c, l1, l2)

let term_operands = function
  | Ret (Some v) -> [ v ]
  | Ret None | Unreachable | Br _ -> []
  | Cbr (c, _, _) -> [ c ]

(** Successor labels of a terminator. *)
let successors = function
  | Ret _ | Unreachable -> []
  | Br l -> [ l ]
  | Cbr (_, l1, l2) -> if String.equal l1 l2 then [ l1 ] else [ l1; l2 ]

(** Result type of an operation, if it produces a value. *)
let result_ty (op : op) : Ty.t option =
  match op with
  | Bin (_, ty, _, _) -> Some ty
  | FBin _ -> Some Ty.F64
  | Icmp _ | Fcmp _ -> Some Ty.I1
  | Cast (_, _, _, to_ty) -> Some to_ty
  | Load (ty, _) -> Some ty
  | Store _ -> None
  | Gep _ -> Some Ty.Ptr
  | Select (ty, _, _, _) -> Some ty
  | Call _ -> None (* determined by the dst var, if any *)
  | Alloca _ -> Some Ty.Ptr
  | Memcpy _ | Memset _ -> None

let binop_to_string = function
  | Add -> "add"
  | Sub -> "sub"
  | Mul -> "mul"
  | SDiv -> "sdiv"
  | UDiv -> "udiv"
  | SRem -> "srem"
  | URem -> "urem"
  | Shl -> "shl"
  | LShr -> "lshr"
  | AShr -> "ashr"
  | And -> "and"
  | Or -> "or"
  | Xor -> "xor"

let fbinop_to_string = function
  | FAdd -> "fadd"
  | FSub -> "fsub"
  | FMul -> "fmul"
  | FDiv -> "fdiv"

let icmp_to_string = function
  | Eq -> "eq"
  | Ne -> "ne"
  | Slt -> "slt"
  | Sle -> "sle"
  | Sgt -> "sgt"
  | Sge -> "sge"
  | Ult -> "ult"
  | Ule -> "ule"
  | Ugt -> "ugt"
  | Uge -> "uge"

let fcmp_to_string = function
  | FEq -> "feq"
  | FNe -> "fne"
  | FLt -> "flt"
  | FLe -> "fle"
  | FGt -> "fgt"
  | FGe -> "fge"

let cast_to_string = function
  | Zext -> "zext"
  | Sext -> "sext"
  | Trunc -> "trunc"
  | Bitcast -> "bitcast"
  | IntToPtr -> "inttoptr"
  | PtrToInt -> "ptrtoint"
  | SiToFp -> "sitofp"
  | FpToSi -> "fptosi"
