(** Imperative construction of MIR functions.

    Used by the MiniC lowering and by tests.  A builder holds one function
    under construction; blocks are emitted in order, and the current block
    accumulates instructions until it is terminated. *)

type t = {
  fname : string;
  params : Value.var list;
  ret_ty : Ty.t option;
  mutable next_id : int;
  mutable done_blocks : Block.t list; (* reversed *)
  mutable cur_label : string option;
  mutable cur_phis : Instr.phi list; (* reversed *)
  mutable cur_body : Instr.t list; (* reversed *)
}

let create ~name ~params ~ret_ty =
  let next_id =
    1 + List.fold_left (fun a (v : Value.var) -> max a v.vid) (-1) params
  in
  {
    fname = name;
    params;
    ret_ty;
    next_id;
    done_blocks = [];
    cur_label = None;
    cur_phis = [];
    cur_body = [];
  }

let fresh_var b ?(name = "t") ty : Value.var =
  let id = b.next_id in
  b.next_id <- id + 1;
  { Value.vid = id; vname = name; vty = ty }

(** Begin a new block.  The previous block must have been terminated. *)
let start_block b label =
  (match b.cur_label with
  | Some l ->
      invalid_arg
        (Printf.sprintf "Builder.start_block %s: block %s not terminated"
           label l)
  | None -> ());
  b.cur_label <- Some label;
  b.cur_phis <- [];
  b.cur_body <- []

let in_block b = b.cur_label <> None

let add_phi b (p : Instr.phi) =
  if b.cur_body <> [] then
    invalid_arg "Builder.add_phi: phis must precede instructions";
  b.cur_phis <- p :: b.cur_phis

(** Append an instruction with no result. *)
let emit b op = b.cur_body <- Instr.mk op :: b.cur_body

(** Append an instruction producing a fresh result of type [ty]. *)
let emit_val b ?(name = "t") ty op : Value.t =
  let dst = fresh_var b ~name ty in
  b.cur_body <- Instr.mk ~dst op :: b.cur_body;
  Var dst

(** Terminate the current block. *)
let terminate b term =
  match b.cur_label with
  | None -> invalid_arg "Builder.terminate: no open block"
  | Some label ->
      let blk =
        Block.mk ~phis:(List.rev b.cur_phis) ~body:(List.rev b.cur_body)
          ~term label
      in
      b.done_blocks <- blk :: b.done_blocks;
      b.cur_label <- None

let ret b v = terminate b (Instr.Ret v)
let br b l = terminate b (Instr.Br l)
let cbr b c l1 l2 = terminate b (Instr.Cbr (c, l1, l2))

(* Typed emission helpers. *)

let binop b op ty x y = emit_val b ty (Instr.Bin (op, ty, x, y))
let fbinop b op x y = emit_val b Ty.F64 (Instr.FBin (op, x, y))
let icmp b op ty x y = emit_val b Ty.I1 (Instr.Icmp (op, ty, x, y))
let fcmp b op x y = emit_val b Ty.I1 (Instr.Fcmp (op, x, y))
let cast b c ~from ~into v = emit_val b into (Instr.Cast (c, from, v, into))
let load b ty addr = emit_val b ty (Instr.Load (ty, addr))
let store b ty v addr = emit b (Instr.Store (ty, v, addr))
let gep b base idxs = emit_val b Ty.Ptr (Instr.Gep (base, idxs))
let select b ty c x y = emit_val b ty (Instr.Select (ty, c, x, y))
let alloca b ?(align = 8) size = emit_val b Ty.Ptr (Instr.Alloca { size; align })
let memcpy b dst src len = emit b (Instr.Memcpy (dst, src, len))
let memset b dst byte len = emit b (Instr.Memset (dst, byte, len))

let call b ~ret callee args =
  match ret with
  | None ->
      emit b (Instr.Call (callee, args));
      None
  | Some ty -> Some (emit_val b ty (Instr.Call (callee, args)))

let call_val b ty callee args =
  emit_val b ty (Instr.Call (callee, args))

(** Finish the function.  The current block, if any, must be terminated. *)
let finish b : Func.t =
  (match b.cur_label with
  | Some l -> invalid_arg (Printf.sprintf "Builder.finish: open block %s" l)
  | None -> ());
  if b.done_blocks = [] then
    invalid_arg "Builder.finish: function has no blocks";
  let f =
    Func.mk ~name:b.fname ~params:b.params ~ret_ty:b.ret_ty
      (List.rev b.done_blocks)
  in
  f.next_id <- max f.next_id b.next_id;
  f
