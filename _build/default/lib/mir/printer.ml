(** Textual form of MIR modules.

    The syntax round-trips through {!Parser}: for every module [m],
    [Parser.parse_module (Printer.module_to_string m)] succeeds and is
    structurally equal to [m].  This is checked by property tests. *)

let bprintf = Printf.bprintf

let value_str (v : Value.t) =
  match v with
  | Var x -> Value.var_to_string x
  | Int (Ty.Ptr, 0) -> "null"
  | Int (ty, k) -> Printf.sprintf "%d:%s" k (Ty.to_string ty)
  | Flt f -> Printf.sprintf "fl(%h)" f
  | Glob g -> "@" ^ g
  | Fn f -> "&" ^ f

let dst_str (d : Value.var option) =
  match d with None -> "" | Some v -> Value.var_to_string v ^ " = "

let instr_to_buf buf (i : Instr.t) =
  let open Instr in
  bprintf buf "  %s" (dst_str i.dst);
  (match i.op with
  | Bin (op, ty, a, b) ->
      bprintf buf "%s %s %s, %s" (binop_to_string op) (Ty.to_string ty)
        (value_str a) (value_str b)
  | FBin (op, a, b) ->
      bprintf buf "%s %s, %s" (fbinop_to_string op) (value_str a)
        (value_str b)
  | Icmp (op, ty, a, b) ->
      bprintf buf "icmp %s %s %s, %s" (icmp_to_string op) (Ty.to_string ty)
        (value_str a) (value_str b)
  | Fcmp (op, a, b) ->
      bprintf buf "fcmp %s %s, %s" (fcmp_to_string op) (value_str a)
        (value_str b)
  | Cast (c, from_ty, v, to_ty) ->
      bprintf buf "%s %s %s to %s" (cast_to_string c) (Ty.to_string from_ty)
        (value_str v) (Ty.to_string to_ty)
  | Load (ty, addr) ->
      bprintf buf "load %s %s" (Ty.to_string ty) (value_str addr)
  | Store (ty, v, addr) ->
      bprintf buf "store %s %s, %s" (Ty.to_string ty) (value_str v)
        (value_str addr)
  | Gep (base, idxs) ->
      bprintf buf "gep %s" (value_str base);
      List.iter
        (fun { stride; idx } ->
          bprintf buf " [%d x %s]" stride (value_str idx))
        idxs
  | Select (ty, c, a, b) ->
      bprintf buf "select %s %s, %s, %s" (Ty.to_string ty) (value_str c)
        (value_str a) (value_str b)
  | Call (callee, args) ->
      bprintf buf "call @%s(%s)" callee
        (String.concat ", " (List.map value_str args));
      (match i.dst with
      | Some d -> bprintf buf " : %s" (Ty.to_string d.vty)
      | None -> ())
  | Alloca { size; align } -> bprintf buf "alloca %d align %d" size align
  | Memcpy (d, s, n) ->
      bprintf buf "memcpy %s, %s, %s" (value_str d) (value_str s)
        (value_str n)
  | Memset (d, c, n) ->
      bprintf buf "memset %s, %s, %s" (value_str d) (value_str c)
        (value_str n));
  Buffer.add_char buf '\n'

let phi_to_buf buf (p : Instr.phi) =
  bprintf buf "  %s = phi %s" (Value.var_to_string p.pdst)
    (Ty.to_string p.pdst.vty);
  List.iter
    (fun (lbl, v) -> bprintf buf " [%s %s]" lbl (value_str v))
    p.incoming;
  Buffer.add_char buf '\n'

let term_to_buf buf (t : Instr.term) =
  (match t with
  | Instr.Ret None -> Buffer.add_string buf "  ret"
  | Instr.Ret (Some v) -> bprintf buf "  ret %s" (value_str v)
  | Instr.Br l -> bprintf buf "  br %s" l
  | Instr.Cbr (c, l1, l2) -> bprintf buf "  cbr %s, %s, %s" (value_str c) l1 l2
  | Instr.Unreachable -> Buffer.add_string buf "  unreachable");
  Buffer.add_char buf '\n'

let block_to_buf buf (b : Block.t) =
  bprintf buf "%s:\n" b.label;
  List.iter (phi_to_buf buf) b.phis;
  List.iter (instr_to_buf buf) b.body;
  term_to_buf buf b.term

let func_to_buf buf (f : Func.t) =
  let params =
    String.concat ", "
      (List.map
         (fun (v : Value.var) ->
           Printf.sprintf "%s : %s" (Value.var_to_string v)
             (Ty.to_string v.vty))
         f.params)
  in
  let ret =
    match f.ret_ty with None -> "void" | Some ty -> Ty.to_string ty
  in
  if f.is_external then
    bprintf buf "extern func @%s(%s) -> %s\n" f.fname params ret
  else begin
    bprintf buf "func @%s(%s) -> %s {\n" f.fname params ret;
    List.iter (block_to_buf buf) f.blocks;
    Buffer.add_string buf "}\n"
  end

let escape_bytes s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | c when Char.code c >= 32 && Char.code c < 127 -> Buffer.add_char buf c
      | c -> bprintf buf "\\x%02x" (Char.code c))
    s;
  Buffer.contents buf

let global_to_buf buf (g : Irmod.global) =
  if g.gextern then
    bprintf buf "extern global @%s : %d align %d%s\n" g.gname g.gsize g.galign
      (if g.gsize_known then "" else " nosize")
  else begin
    bprintf buf "global @%s : %d align %d {\n" g.gname g.gsize g.galign;
    List.iter
      (fun (f : Irmod.gfield) ->
        match f with
        | GBytes s -> bprintf buf "  bytes \"%s\"\n" (escape_bytes s)
        | GPtr name -> bprintf buf "  ptr @%s\n" name
        | GZero n -> bprintf buf "  zero %d\n" n)
      g.gfields;
    Buffer.add_string buf "}\n"
  end

let module_to_buf buf (m : Irmod.t) =
  bprintf buf "module \"%s\"\n\n" m.mname;
  List.iter (global_to_buf buf) m.globals;
  List.iter
    (fun f ->
      Buffer.add_char buf '\n';
      func_to_buf buf f)
    m.funcs

let instr_to_string i =
  let buf = Buffer.create 64 in
  instr_to_buf buf i;
  String.trim (Buffer.contents buf)

let func_to_string f =
  let buf = Buffer.create 1024 in
  func_to_buf buf f;
  Buffer.contents buf

let module_to_string m =
  let buf = Buffer.create 4096 in
  module_to_buf buf m;
  Buffer.contents buf

let pp_func fmt f = Format.pp_print_string fmt (func_to_string f)
let pp_module fmt m = Format.pp_print_string fmt (module_to_string m)
