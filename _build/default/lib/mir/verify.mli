(** MIR verifier: structural well-formedness of functions and modules —
    unique SSA definitions, operand types, branch targets, phi/predecessor
    agreement.  Dominance of definitions over uses is checked separately
    by [Mi_analysis.Domcheck]. *)

type error = { where : string; what : string }

val pp_error : Format.formatter -> error -> unit
val error_to_string : error -> string

val verify_func : Func.t -> error list
val verify_module : Irmod.t -> error list

val assert_valid_module : Irmod.t -> unit
(** Raises [Failure] with all messages if the module is ill-formed. *)
