(** MIR verifier.

    Checks structural well-formedness of functions and modules:
    - unique SSA definitions; all uses refer to a definition;
    - operand types match each instruction's expectations;
    - branch targets exist; the entry block has no phis;
    - each phi has exactly one incoming value per CFG predecessor;
    - externally declared functions have no body.

    Dominance of definitions over uses is checked by
    [Mi_analysis.Domcheck] (it needs the dominator tree, which lives in
    the analysis library to avoid a dependency cycle). *)

type error = { where : string; what : string }

let err where fmt = Printf.ksprintf (fun what -> { where; what }) fmt

let pp_error fmt e = Format.fprintf fmt "%s: %s" e.where e.what

let error_to_string e = Printf.sprintf "%s: %s" e.where e.what

let check_ty where expected (v : Value.t) errors =
  let actual = Value.ty_of v in
  if not (Ty.equal expected actual) then
    errors :=
      err where "operand %s has type %s, expected %s" (Value.to_string v)
        (Ty.to_string actual) (Ty.to_string expected)
      :: !errors

let check_int where (v : Value.t) errors =
  if not (Ty.is_int (Value.ty_of v)) then
    errors :=
      err where "operand %s must be an integer" (Value.to_string v)
      :: !errors

let verify_instr ~where (i : Instr.t) errors =
  let open Instr in
  (match i.op with
  | Bin (_, ty, a, b) ->
      if not (Ty.is_int ty) then
        errors := err where "binop on non-integer type" :: !errors;
      check_ty where ty a errors;
      check_ty where ty b errors
  | FBin (_, a, b) ->
      check_ty where Ty.F64 a errors;
      check_ty where Ty.F64 b errors
  | Icmp (_, ty, a, b) ->
      if not (Ty.is_int ty || Ty.is_ptr ty) then
        errors := err where "icmp on non-integer, non-pointer type" :: !errors;
      check_ty where ty a errors;
      check_ty where ty b errors
  | Fcmp (_, a, b) ->
      check_ty where Ty.F64 a errors;
      check_ty where Ty.F64 b errors
  | Cast (c, from_ty, v, to_ty) -> (
      check_ty where from_ty v errors;
      match c with
      | Zext | Sext ->
          if
            not
              (Ty.is_int from_ty && Ty.is_int to_ty
              && Ty.bits from_ty < Ty.bits to_ty)
          then errors := err where "bad zext/sext types" :: !errors
      | Trunc ->
          if
            not
              (Ty.is_int from_ty && Ty.is_int to_ty
              && Ty.bits from_ty > Ty.bits to_ty)
          then errors := err where "bad trunc types" :: !errors
      | Bitcast ->
          if Ty.size_of from_ty <> Ty.size_of to_ty then
            errors := err where "bitcast between different sizes" :: !errors
      | IntToPtr ->
          if not (Ty.is_int from_ty && Ty.is_ptr to_ty) then
            errors := err where "bad inttoptr types" :: !errors
      | PtrToInt ->
          if not (Ty.is_ptr from_ty && Ty.is_int to_ty) then
            errors := err where "bad ptrtoint types" :: !errors
      | SiToFp ->
          if not (Ty.is_int from_ty && Ty.is_float to_ty) then
            errors := err where "bad sitofp types" :: !errors
      | FpToSi ->
          if not (Ty.is_float from_ty && Ty.is_int to_ty) then
            errors := err where "bad fptosi types" :: !errors)
  | Load (_, addr) -> check_ty where Ty.Ptr addr errors
  | Store (ty, v, addr) ->
      check_ty where ty v errors;
      check_ty where Ty.Ptr addr errors
  | Gep (base, idxs) ->
      check_ty where Ty.Ptr base errors;
      List.iter (fun gi -> check_int where gi.idx errors) idxs
  | Select (ty, c, a, b) ->
      check_ty where Ty.I1 c errors;
      check_ty where ty a errors;
      check_ty where ty b errors
  | Call _ -> ()
  | Alloca { size; align } ->
      if size < 0 then errors := err where "negative alloca size" :: !errors;
      if not (Mi_support.Util.is_pow2 align) then
        errors := err where "alloca alignment not a power of two" :: !errors
  | Memcpy (d, s, n) ->
      check_ty where Ty.Ptr d errors;
      check_ty where Ty.Ptr s errors;
      check_int where n errors
  | Memset (d, b, n) ->
      check_ty where Ty.Ptr d errors;
      check_int where b errors;
      check_int where n errors);
  (* destination type must match the op's result type *)
  match (i.dst, Instr.result_ty i.op) with
  | Some d, Some ty ->
      if not (Ty.equal d.vty ty) then
        errors :=
          err where "destination %s : %s does not match result type %s"
            (Value.var_to_string d) (Ty.to_string d.vty) (Ty.to_string ty)
          :: !errors
  | Some _, None -> (
      match i.op with
      | Call _ -> () (* call result type is defined by the dst var *)
      | _ -> errors := err where "value-producing dst on void op" :: !errors)
  | None, Some _ -> () (* results may be discarded *)
  | None, None -> ()

let verify_func (f : Func.t) : error list =
  if f.is_external then
    if f.blocks <> [] then
      [ err f.fname "external function has a body" ]
    else []
  else if f.blocks = [] then [ err f.fname "defined function has no blocks" ]
  else begin
    let errors = ref [] in
    let defined : (int, string) Hashtbl.t = Hashtbl.create 64 in
    let define where (v : Value.var) =
      if Hashtbl.mem defined v.vid then
        errors :=
          err where "variable %s defined twice" (Value.var_to_string v)
          :: !errors
      else Hashtbl.add defined v.vid where
    in
    List.iter (define (f.fname ^ " params")) f.params;
    (* collect defs and block labels *)
    let labels = Hashtbl.create 16 in
    List.iter
      (fun (b : Block.t) ->
        if Hashtbl.mem labels b.label then
          errors := err f.fname "duplicate block label %s" b.label :: !errors;
        Hashtbl.add labels b.label ();
        let where = Printf.sprintf "%s:%s" f.fname b.label in
        List.iter (fun (p : Instr.phi) -> define where p.pdst) b.phis;
        List.iter
          (fun (i : Instr.t) ->
            match i.dst with Some d -> define where d | None -> ())
          b.body)
      f.blocks;
    (* entry block: no phis *)
    (match f.blocks with
    | b :: _ when b.phis <> [] ->
        errors := err f.fname "entry block has phis" :: !errors
    | _ -> ());
    (* compute predecessors for phi checking *)
    let preds : (string, string list) Hashtbl.t = Hashtbl.create 16 in
    List.iter
      (fun (b : Block.t) ->
        List.iter
          (fun succ ->
            let cur =
              Option.value ~default:[] (Hashtbl.find_opt preds succ)
            in
            Hashtbl.replace preds succ (b.label :: cur))
          (Instr.successors b.term))
      f.blocks;
    let check_use where (v : Value.t) =
      match v with
      | Var x ->
          if not (Hashtbl.mem defined x.vid) then
            errors :=
              err where "use of undefined variable %s"
                (Value.var_to_string x)
              :: !errors
      | _ -> ()
    in
    List.iter
      (fun (b : Block.t) ->
        let where = Printf.sprintf "%s:%s" f.fname b.label in
        (* phis *)
        List.iter
          (fun (p : Instr.phi) ->
            let ps =
              Option.value ~default:[] (Hashtbl.find_opt preds b.label)
              |> List.sort_uniq compare
            in
            let ins = List.map fst p.incoming |> List.sort_uniq compare in
            if ps <> ins then
              errors :=
                err where "phi %s incoming {%s} but predecessors {%s}"
                  (Value.var_to_string p.pdst)
                  (String.concat "," ins) (String.concat "," ps)
                :: !errors;
            if
              List.length p.incoming
              <> List.length (List.sort_uniq compare (List.map fst p.incoming))
            then
              errors :=
                err where "phi %s has duplicate incoming labels"
                  (Value.var_to_string p.pdst)
                :: !errors;
            List.iter
              (fun (_, v) ->
                check_use where v;
                check_ty where p.pdst.vty v errors)
              p.incoming)
          b.phis;
        (* body *)
        List.iter
          (fun (i : Instr.t) ->
            List.iter (check_use where) (Instr.operands i);
            verify_instr ~where i errors)
          b.body;
        (* terminator *)
        List.iter (check_use where) (Instr.term_operands b.term);
        (match b.term with
        | Instr.Ret (Some v) -> (
            match f.ret_ty with
            | Some ty -> check_ty where ty v errors
            | None ->
                errors :=
                  err where "ret with value in void function" :: !errors)
        | Instr.Ret None ->
            if f.ret_ty <> None then
              errors :=
                err where "ret without value in non-void function" :: !errors
        | Instr.Cbr (c, _, _) -> check_ty where Ty.I1 c errors
        | _ -> ());
        List.iter
          (fun l ->
            if not (Hashtbl.mem labels l) then
              errors := err where "branch to unknown label %s" l :: !errors)
          (Instr.successors b.term))
      f.blocks;
    List.rev !errors
  end

let verify_module (m : Irmod.t) : error list =
  let errors = ref [] in
  (* unique names *)
  let seen = Hashtbl.create 16 in
  List.iter
    (fun (g : Irmod.global) ->
      if Hashtbl.mem seen ("g:" ^ g.gname) then
        errors := err m.mname "duplicate global @%s" g.gname :: !errors;
      Hashtbl.add seen ("g:" ^ g.gname) ();
      if (not g.gextern) && g.gfields = [] && g.gsize > 0 then
        errors :=
          err m.mname "global @%s defined with no initializer fields"
            g.gname
          :: !errors)
    m.globals;
  List.iter
    (fun (f : Func.t) ->
      if Hashtbl.mem seen ("f:" ^ f.fname) then
        errors := err m.mname "duplicate function @%s" f.fname :: !errors;
      Hashtbl.add seen ("f:" ^ f.fname) ();
      errors := List.rev_append (verify_func f) !errors)
    m.funcs;
  List.rev !errors

(** Raise [Failure] with a readable message if the module is ill-formed. *)
let assert_valid_module m =
  match verify_module m with
  | [] -> ()
  | errs ->
      failwith
        ("MIR verification failed:\n"
        ^ String.concat "\n" (List.map error_to_string errs))
