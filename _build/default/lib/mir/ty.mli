(** First-order types of the MIR.

    Like recent LLVM, pointers are opaque ([Ptr]); element types appear
    only as access widths on loads/stores and strides on [gep]s.
    Aggregates exist only in memory — the frontend lowers all
    struct/array accesses to address arithmetic. *)

type t =
  | I1  (** booleans, as produced by comparisons *)
  | I8
  | I16
  | I32
  | I64
  | F64
  | Ptr  (** opaque 64-bit pointer *)

val equal : t -> t -> bool

val size_of : t -> int
(** Byte size of a value of this type as stored in memory. *)

val align_of : t -> int
(** Natural alignment; equals the size for all MIR types. *)

val is_int : t -> bool
val is_float : t -> bool
val is_ptr : t -> bool

val bits : t -> int
(** Bit width of an integer type; raises on [F64]/[Ptr]. *)

val to_string : t -> string
val of_string : string -> t option
val pp : Format.formatter -> t -> unit
