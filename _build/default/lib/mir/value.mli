(** SSA values and operands. *)

type var = { vid : int; vname : string; vty : Ty.t }
(** An SSA name: defined exactly once (instruction/phi destination or
    function parameter).  Identity is [vid], unique within a function;
    [vname] is a printing hint. *)

type t =
  | Var of var
  | Int of Ty.t * int  (** typed integer immediate; [Int (Ptr, 0)] is null *)
  | Flt of float
  | Glob of string  (** address of a global; type [Ptr] *)
  | Fn of string  (** address of a function; type [Ptr] *)

val var_equal : var -> var -> bool
val var_compare : var -> var -> int
val ty_of : t -> Ty.t

val null : t
val i64 : int -> t
val i32 : int -> t
val i1 : bool -> t

val is_const : t -> bool

val equal : t -> t -> bool
(** Structural equality ([Var]s by id). *)

val var_to_string : var -> string
val to_string : t -> string
val pp : Format.formatter -> t -> unit

(** Maps, sets and hash tables over SSA variables, keyed by id. *)

module VMap : Map.S with type key = var
module VSet : Set.S with type elt = var
module VTbl : Hashtbl.S with type key = var
