(** Parser for the textual MIR produced by {!Printer}.

    Hand-written, line-oriented, two passes per function: the first pass
    records the type of every SSA definition (types are derivable from the
    instruction syntax alone), the second builds the instructions with all
    variable references resolved.  This allows uses that lexically precede
    their definitions (e.g. phi arguments of loop headers). *)

exception Parse_error of int * string
(** [(line_number, message)] *)

let fail line msg = raise (Parse_error (line, msg))

(* ------------------------------------------------------------------ *)
(* Character cursor over one line                                      *)
(* ------------------------------------------------------------------ *)

type cursor = { s : string; mutable pos : int; line : int }

let cur s line = { s; pos = 0; line }

let peek c = if c.pos < String.length c.s then Some c.s.[c.pos] else None

let skip_ws c =
  while
    c.pos < String.length c.s && (c.s.[c.pos] = ' ' || c.s.[c.pos] = '\t')
  do
    c.pos <- c.pos + 1
  done

let at_end c =
  skip_ws c;
  c.pos >= String.length c.s

let expect_char c ch =
  skip_ws c;
  match peek c with
  | Some x when x = ch -> c.pos <- c.pos + 1
  | _ -> fail c.line (Printf.sprintf "expected '%c' at col %d" ch c.pos)

let try_char c ch =
  skip_ws c;
  match peek c with
  | Some x when x = ch ->
      c.pos <- c.pos + 1;
      true
  | _ -> false

let is_ident_char ch =
  (ch >= 'a' && ch <= 'z')
  || (ch >= 'A' && ch <= 'Z')
  || (ch >= '0' && ch <= '9')
  || ch = '_' || ch = '.'

let ident c =
  skip_ws c;
  let start = c.pos in
  while c.pos < String.length c.s && is_ident_char c.s.[c.pos] do
    c.pos <- c.pos + 1
  done;
  if c.pos = start then fail c.line ("expected identifier at col " ^ string_of_int start);
  String.sub c.s start (c.pos - start)

let integer c =
  skip_ws c;
  let start = c.pos in
  if peek c = Some '-' then c.pos <- c.pos + 1;
  while
    c.pos < String.length c.s && c.s.[c.pos] >= '0' && c.s.[c.pos] <= '9'
  do
    c.pos <- c.pos + 1
  done;
  if c.pos = start then fail c.line "expected integer";
  int_of_string (String.sub c.s start (c.pos - start))

let word c =
  (* like ident, for keywords *)
  ident c

let parse_ty c =
  let w = ident c in
  match Ty.of_string w with
  | Some ty -> ty
  | None -> fail c.line ("unknown type " ^ w)

(* ------------------------------------------------------------------ *)
(* Variables and values                                               *)
(* ------------------------------------------------------------------ *)

(* "%name.id" -> (name, id) *)
let split_var line tok =
  match String.rindex_opt tok '.' with
  | None -> fail line ("malformed variable %" ^ tok)
  | Some i -> (
      let name = String.sub tok 0 i in
      let ids = String.sub tok (i + 1) (String.length tok - i - 1) in
      match int_of_string_opt ids with
      | Some id -> (name, id)
      | None -> fail line ("malformed variable id in %" ^ tok))

type deftypes = (int, Ty.t) Hashtbl.t

let parse_var (defs : deftypes) c : Value.var =
  expect_char c '%';
  let tok = ident c in
  let name, id = split_var c.line tok in
  match Hashtbl.find_opt defs id with
  | Some ty -> { Value.vid = id; vname = name; vty = ty }
  | None -> fail c.line (Printf.sprintf "use of undefined variable %%%s" tok)

let parse_value (defs : deftypes) c : Value.t =
  skip_ws c;
  match peek c with
  | Some '%' -> Var (parse_var defs c)
  | Some '@' ->
      c.pos <- c.pos + 1;
      Glob (ident c)
  | Some '&' ->
      c.pos <- c.pos + 1;
      Fn (ident c)
  | Some ('-' | '0' .. '9') ->
      let k = integer c in
      expect_char c ':';
      let ty = parse_ty c in
      Value.Int (ty, k)
  | Some _ ->
      let w = ident c in
      if w = "null" then Value.null
      else if w = "fl" then begin
        expect_char c '(';
        (* consume until ')' *)
        let start = c.pos in
        while c.pos < String.length c.s && c.s.[c.pos] <> ')' do
          c.pos <- c.pos + 1
        done;
        let lit = String.sub c.s start (c.pos - start) in
        expect_char c ')';
        match float_of_string_opt (String.trim lit) with
        | Some f -> Value.Flt f
        | None -> fail c.line ("bad float literal " ^ lit)
      end
      else fail c.line ("unexpected token " ^ w)
  | None -> fail c.line "unexpected end of line, expected value"

(* ------------------------------------------------------------------ *)
(* Keyword tables                                                     *)
(* ------------------------------------------------------------------ *)

let binop_of_string = function
  | "add" -> Some Instr.Add
  | "sub" -> Some Instr.Sub
  | "mul" -> Some Instr.Mul
  | "sdiv" -> Some Instr.SDiv
  | "udiv" -> Some Instr.UDiv
  | "srem" -> Some Instr.SRem
  | "urem" -> Some Instr.URem
  | "shl" -> Some Instr.Shl
  | "lshr" -> Some Instr.LShr
  | "ashr" -> Some Instr.AShr
  | "and" -> Some Instr.And
  | "or" -> Some Instr.Or
  | "xor" -> Some Instr.Xor
  | _ -> None

let fbinop_of_string = function
  | "fadd" -> Some Instr.FAdd
  | "fsub" -> Some Instr.FSub
  | "fmul" -> Some Instr.FMul
  | "fdiv" -> Some Instr.FDiv
  | _ -> None

let icmp_of_string = function
  | "eq" -> Some Instr.Eq
  | "ne" -> Some Instr.Ne
  | "slt" -> Some Instr.Slt
  | "sle" -> Some Instr.Sle
  | "sgt" -> Some Instr.Sgt
  | "sge" -> Some Instr.Sge
  | "ult" -> Some Instr.Ult
  | "ule" -> Some Instr.Ule
  | "ugt" -> Some Instr.Ugt
  | "uge" -> Some Instr.Uge
  | _ -> None

let fcmp_of_string = function
  | "feq" -> Some Instr.FEq
  | "fne" -> Some Instr.FNe
  | "flt" -> Some Instr.FLt
  | "fle" -> Some Instr.FLe
  | "fgt" -> Some Instr.FGt
  | "fge" -> Some Instr.FGe
  | _ -> None

let cast_of_string = function
  | "zext" -> Some Instr.Zext
  | "sext" -> Some Instr.Sext
  | "trunc" -> Some Instr.Trunc
  | "bitcast" -> Some Instr.Bitcast
  | "inttoptr" -> Some Instr.IntToPtr
  | "ptrtoint" -> Some Instr.PtrToInt
  | "sitofp" -> Some Instr.SiToFp
  | "fptosi" -> Some Instr.FpToSi
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Pass 1: result type of a definition line                            *)
(* ------------------------------------------------------------------ *)

(* [line] has the shape "%x.N = <rest>"; return the type of %x.N. *)
let def_type lineno (rest : string) : Ty.t =
  let c = cur rest lineno in
  let kw = word c in
  match kw with
  | "phi" | "load" | "select" -> parse_ty c
  | "icmp" | "fcmp" -> Ty.I1
  | "gep" | "alloca" -> Ty.Ptr
  | "call" ->
      (* type annotation after the closing paren: ": ty" at end *)
      let s = rest in
      let rec find_colon i depth =
        if i >= String.length s then fail lineno "call def missing ': ty'"
        else
          match s.[i] with
          | '(' -> find_colon (i + 1) (depth + 1)
          | ')' -> find_colon (i + 1) (depth - 1)
          | ':' when depth = 0 -> i
          | _ -> find_colon (i + 1) depth
      in
      let i = find_colon 4 0 in
      let c2 = cur (String.sub s (i + 1) (String.length s - i - 1)) lineno in
      parse_ty c2
  | _ -> (
      match (binop_of_string kw, fbinop_of_string kw, cast_of_string kw) with
      | Some _, _, _ ->
          parse_ty (cur rest lineno |> fun c ->
                    let _ = word c in
                    c)
      | _, Some _, _ -> Ty.F64
      | _, _, Some _ ->
          (* "<cast> <from-ty> <v> to <to-ty>": find last " to " *)
          let s = rest in
          let rec find_to i best =
            if i + 4 > String.length s then best
            else if String.sub s i 4 = " to " then find_to (i + 1) (Some i)
            else find_to (i + 1) best
          in
          (match find_to 0 None with
          | None -> fail lineno "cast missing 'to'"
          | Some i ->
              let c2 =
                cur (String.sub s (i + 4) (String.length s - i - 4)) lineno
              in
              parse_ty c2)
      | None, None, None -> fail lineno ("unknown instruction " ^ kw))

(* ------------------------------------------------------------------ *)
(* Pass 2: full instruction parsing                                    *)
(* ------------------------------------------------------------------ *)

let parse_gep_indices defs c =
  let idxs = ref [] in
  while try_char c '[' do
    let stride = integer c in
    let x = word c in
    if x <> "x" then fail c.line "expected 'x' in gep index";
    let idx = parse_value defs c in
    expect_char c ']';
    idxs := { Instr.stride; idx } :: !idxs
  done;
  List.rev !idxs

let parse_call_tail defs c =
  expect_char c '@';
  let callee = ident c in
  expect_char c '(';
  let args = ref [] in
  if not (try_char c ')') then begin
    args := [ parse_value defs c ];
    while try_char c ',' do
      args := parse_value defs c :: !args
    done;
    expect_char c ')'
  end;
  (callee, List.rev !args)

(* Parse the RHS of a definition or a void instruction. [dst] is the
   already-resolved destination variable, if any. *)
let parse_op defs lineno (dst : Value.var option) (rest : string) : Instr.t =
  let c = cur rest lineno in
  let kw = word c in
  let op : Instr.op =
    match kw with
    | "load" ->
        let ty = parse_ty c in
        let addr = parse_value defs c in
        Load (ty, addr)
    | "store" ->
        let ty = parse_ty c in
        let v = parse_value defs c in
        expect_char c ',';
        let addr = parse_value defs c in
        Store (ty, v, addr)
    | "icmp" ->
        let opname = word c in
        let op =
          match icmp_of_string opname with
          | Some o -> o
          | None -> fail lineno ("bad icmp op " ^ opname)
        in
        let ty = parse_ty c in
        let a = parse_value defs c in
        expect_char c ',';
        let b = parse_value defs c in
        Icmp (op, ty, a, b)
    | "fcmp" ->
        let opname = word c in
        let op =
          match fcmp_of_string opname with
          | Some o -> o
          | None -> fail lineno ("bad fcmp op " ^ opname)
        in
        let a = parse_value defs c in
        expect_char c ',';
        let b = parse_value defs c in
        Fcmp (op, a, b)
    | "gep" ->
        let base = parse_value defs c in
        let idxs = parse_gep_indices defs c in
        Gep (base, idxs)
    | "select" ->
        let ty = parse_ty c in
        let cond = parse_value defs c in
        expect_char c ',';
        let a = parse_value defs c in
        expect_char c ',';
        let b = parse_value defs c in
        Select (ty, cond, a, b)
    | "call" ->
        let callee, args = parse_call_tail defs c in
        (* optional ": ty" annotation; type already captured via dst *)
        if try_char c ':' then ignore (parse_ty c);
        Call (callee, args)
    | "alloca" ->
        let size = integer c in
        let a = word c in
        if a <> "align" then fail lineno "expected 'align'";
        let align = integer c in
        Alloca { size; align }
    | "memcpy" ->
        let d = parse_value defs c in
        expect_char c ',';
        let s = parse_value defs c in
        expect_char c ',';
        let n = parse_value defs c in
        Memcpy (d, s, n)
    | "memset" ->
        let d = parse_value defs c in
        expect_char c ',';
        let b = parse_value defs c in
        expect_char c ',';
        let n = parse_value defs c in
        Memset (d, b, n)
    | _ -> (
        match
          (binop_of_string kw, fbinop_of_string kw, cast_of_string kw)
        with
        | Some op, _, _ ->
            let ty = parse_ty c in
            let a = parse_value defs c in
            expect_char c ',';
            let b = parse_value defs c in
            Bin (op, ty, a, b)
        | _, Some op, _ ->
            let a = parse_value defs c in
            expect_char c ',';
            let b = parse_value defs c in
            FBin (op, a, b)
        | _, _, Some cop ->
            let from_ty = parse_ty c in
            let v = parse_value defs c in
            let t = word c in
            if t <> "to" then fail lineno "expected 'to' in cast";
            let to_ty = parse_ty c in
            Cast (cop, from_ty, v, to_ty)
        | None, None, None -> fail lineno ("unknown instruction " ^ kw))
  in
  { Instr.dst; op }

let parse_phi defs lineno (dst : Value.var) (rest : string) : Instr.phi =
  let c = cur rest lineno in
  let kw = word c in
  if kw <> "phi" then fail lineno "expected phi";
  ignore (parse_ty c);
  let incoming = ref [] in
  while try_char c '[' do
    let lbl = ident c in
    let v = parse_value defs c in
    expect_char c ']';
    incoming := (lbl, v) :: !incoming
  done;
  { Instr.pdst = dst; incoming = List.rev !incoming }

(* ------------------------------------------------------------------ *)
(* Module-level parsing                                                *)
(* ------------------------------------------------------------------ *)

let strip_comment line =
  match String.index_opt line ';' with
  | Some i -> String.sub line 0 i
  | None -> line

let unescape_bytes lineno s =
  let buf = Buffer.create (String.length s) in
  let i = ref 0 in
  let n = String.length s in
  while !i < n do
    (if s.[!i] = '\\' then begin
       if !i + 1 >= n then fail lineno "dangling backslash";
       match s.[!i + 1] with
       | '\\' ->
           Buffer.add_char buf '\\';
           i := !i + 2
       | '"' ->
           Buffer.add_char buf '"';
           i := !i + 2
       | 'x' ->
           if !i + 3 >= n then fail lineno "bad \\x escape";
           let hex = String.sub s (!i + 2) 2 in
           (match int_of_string_opt ("0x" ^ hex) with
           | Some code ->
               Buffer.add_char buf (Char.chr code);
               i := !i + 4
           | None -> fail lineno "bad \\x escape")
       | c -> fail lineno (Printf.sprintf "bad escape \\%c" c)
     end
     else begin
       Buffer.add_char buf s.[!i];
       incr i
     end)
  done;
  Buffer.contents buf

(* Parse a signature "@name(%a.0 : i64, ...) -> ty" starting after
   "func "/"extern func ". Returns (name, params, ret_ty). *)
let parse_signature lineno (s : string) =
  let c = cur s lineno in
  expect_char c '@';
  let name = ident c in
  expect_char c '(';
  let params = ref [] in
  if not (try_char c ')') then begin
    let parse_param () =
      expect_char c '%';
      let tok = ident c in
      let vname, vid = split_var lineno tok in
      expect_char c ':';
      let ty = parse_ty c in
      { Value.vid; vname; vty = ty }
    in
    params := [ parse_param () ];
    while try_char c ',' do
      params := parse_param () :: !params
    done;
    expect_char c ')'
  end;
  expect_char c '-';
  expect_char c '>';
  let rw = word c in
  let ret_ty =
    if rw = "void" then None
    else
      match Ty.of_string rw with
      | Some ty -> Some ty
      | None -> fail lineno ("bad return type " ^ rw)
  in
  (name, List.rev !params, ret_ty)

type raw_line = { lno : int; text : string }

(* Split function body lines into blocks and parse with two passes. *)
let parse_func_body ~name ~params ~ret_ty (lines : raw_line list) : Func.t =
  let defs : deftypes = Hashtbl.create 64 in
  List.iter
    (fun (p : Value.var) -> Hashtbl.replace defs p.vid p.vty)
    params;
  (* pass 1: collect def types *)
  List.iter
    (fun { lno; text } ->
      let t = String.trim text in
      if String.length t > 0 && t.[0] = '%' then
        match String.index_opt t '=' with
        | Some i ->
            let lhs = String.trim (String.sub t 0 i) in
            let rhs =
              String.trim (String.sub t (i + 1) (String.length t - i - 1))
            in
            let tok = String.sub lhs 1 (String.length lhs - 1) in
            let _, id = split_var lno tok in
            Hashtbl.replace defs id (def_type lno rhs)
        | None -> fail lno "expected '=' after variable")
    lines;
  (* pass 2: build blocks *)
  let blocks = ref [] in
  let cur_label = ref None in
  let cur_phis = ref [] in
  let cur_body = ref [] in
  let finish_block term =
    match !cur_label with
    | None -> fail 0 "terminator outside block"
    | Some label ->
        blocks :=
          Block.mk ~phis:(List.rev !cur_phis) ~body:(List.rev !cur_body)
            ~term label
          :: !blocks;
        cur_label := None;
        cur_phis := [];
        cur_body := []
  in
  List.iter
    (fun { lno; text } ->
      let t = String.trim text in
      if t = "" then ()
      else if String.length t > 1 && t.[String.length t - 1] = ':' then begin
        (match !cur_label with
        | Some l -> fail lno ("block " ^ l ^ " not terminated")
        | None -> ());
        cur_label := Some (String.sub t 0 (String.length t - 1));
        cur_phis := [];
        cur_body := []
      end
      else if !cur_label = None then fail lno "instruction outside block"
      else if String.length t > 0 && t.[0] = '%' then begin
        let i = String.index t '=' in
        let lhs = String.trim (String.sub t 0 i) in
        let rhs =
          String.trim (String.sub t (i + 1) (String.length t - i - 1))
        in
        let tok = String.sub lhs 1 (String.length lhs - 1) in
        let vname, vid = split_var lno tok in
        let vty = Hashtbl.find defs vid in
        let dst = { Value.vid; vname; vty } in
        if String.length rhs >= 3 && String.sub rhs 0 3 = "phi" then
          cur_phis := parse_phi defs lno dst rhs :: !cur_phis
        else cur_body := parse_op defs lno (Some dst) rhs :: !cur_body
      end
      else begin
        (* void instruction or terminator *)
        let c = cur t lno in
        let kw = word c in
        match kw with
        | "ret" ->
            if at_end c then finish_block (Instr.Ret None)
            else finish_block (Instr.Ret (Some (parse_value defs c)))
        | "br" ->
            let l = ident c in
            finish_block (Instr.Br l)
        | "cbr" ->
            let cond = parse_value defs c in
            expect_char c ',';
            let l1 = ident c in
            expect_char c ',';
            let l2 = ident c in
            finish_block (Instr.Cbr (cond, l1, l2))
        | "unreachable" -> finish_block Instr.Unreachable
        | _ -> cur_body := parse_op defs lno None t :: !cur_body
      end)
    lines;
  (match !cur_label with
  | Some l -> fail 0 ("block " ^ l ^ " not terminated at end of function")
  | None -> ());
  Func.mk ~name ~params ~ret_ty (List.rev !blocks)

let starts_with prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let parse_module (text : string) : Irmod.t =
  let lines =
    String.split_on_char '\n' text
    |> List.mapi (fun i l -> { lno = i + 1; text = strip_comment l })
  in
  let mname = ref "m" in
  let m = Irmod.mk "m" in
  let rec go lines =
    match lines with
    | [] -> ()
    | { lno; text } :: rest ->
        let t = String.trim text in
        if t = "" then go rest
        else if starts_with "module" t then begin
          (match String.index_opt t '"' with
          | Some i ->
              let j = String.rindex t '"' in
              mname := String.sub t (i + 1) (j - i - 1)
          | None -> fail lno "module line missing name");
          go rest
        end
        else if starts_with "extern global" t then begin
          let c =
            cur (String.sub t 13 (String.length t - 13)) lno
          in
          expect_char c '@';
          let name = ident c in
          expect_char c ':';
          let size = integer c in
          let a = word c in
          if a <> "align" then fail lno "expected align";
          let align = integer c in
          let size_known = not (at_end c && false) in
          (* optional "nosize" *)
          let size_known =
            if at_end c then size_known
            else
              let w = word c in
              if w = "nosize" then false
              else fail lno ("unexpected token " ^ w)
          in
          Irmod.add_global m
            (Irmod.mk_global ~align ~extern:true ~size_known ~name ~size []);
          go rest
        end
        else if starts_with "global" t then begin
          let c = cur (String.sub t 6 (String.length t - 6)) lno in
          expect_char c '@';
          let name = ident c in
          expect_char c ':';
          let size = integer c in
          let a = word c in
          if a <> "align" then fail lno "expected align";
          let align = integer c in
          expect_char c '{';
          (* read field lines until "}" *)
          let rec read_fields lines acc =
            match lines with
            | [] -> fail lno "unterminated global"
            | { lno = l2; text } :: rest ->
                let t2 = String.trim text in
                if t2 = "}" then (List.rev acc, rest)
                else if t2 = "" then read_fields rest acc
                else if starts_with "bytes" t2 then begin
                  let i = String.index t2 '"' in
                  let j = String.rindex t2 '"' in
                  if j <= i then fail l2 "bad bytes field";
                  let raw = String.sub t2 (i + 1) (j - i - 1) in
                  read_fields rest
                    (Irmod.GBytes (unescape_bytes l2 raw) :: acc)
                end
                else if starts_with "ptr" t2 then begin
                  let c2 = cur (String.sub t2 3 (String.length t2 - 3)) l2 in
                  expect_char c2 '@';
                  read_fields rest (Irmod.GPtr (ident c2) :: acc)
                end
                else if starts_with "zero" t2 then begin
                  let c2 = cur (String.sub t2 4 (String.length t2 - 4)) l2 in
                  read_fields rest (Irmod.GZero (integer c2) :: acc)
                end
                else fail l2 ("bad global field: " ^ t2)
          in
          let fields, rest' = read_fields rest [] in
          Irmod.add_global m
            (Irmod.mk_global ~align ~name ~size fields);
          go rest'
        end
        else if starts_with "extern func" t then begin
          let sig_str = String.sub t 11 (String.length t - 11) in
          let name, params, ret_ty = parse_signature lno sig_str in
          Irmod.add_func m
            (Func.mk ~is_external:true ~name ~params ~ret_ty []);
          go rest
        end
        else if starts_with "func" t then begin
          (* signature up to "{" *)
          let brace =
            match String.rindex_opt t '{' with
            | Some i -> i
            | None -> fail lno "func line missing '{'"
          in
          let sig_str = String.sub t 4 (brace - 4) in
          let name, params, ret_ty = parse_signature lno sig_str in
          (* collect body lines until a line that is exactly "}" *)
          let rec collect lines acc =
            match lines with
            | [] -> fail lno ("unterminated function " ^ name)
            | ({ text; _ } as rl) :: rest ->
                if String.trim text = "}" then (List.rev acc, rest)
                else collect rest (rl :: acc)
          in
          let body_lines, rest' = collect rest [] in
          Irmod.add_func m (parse_func_body ~name ~params ~ret_ty body_lines);
          go rest'
        end
        else fail lno ("unexpected top-level line: " ^ t)
  in
  go lines;
  { m with mname = !mname }

let parse_module_exn = parse_module

let parse_module_res text =
  match parse_module text with
  | m -> Ok m
  | exception Parse_error (line, msg) ->
      Error (Printf.sprintf "line %d: %s" line msg)
