(** MIR functions: blocks in order (entry first) plus a fresh-variable
    source. *)

type t = {
  fname : string;
  params : Value.var list;
  ret_ty : Ty.t option;
  mutable blocks : Block.t list;  (** entry block first; empty iff external *)
  mutable next_id : int;  (** source of fresh SSA ids — use {!fresh_var} *)
  is_external : bool;
      (** declaration only: the body lives in another translation unit or
          the runtime's builtin table *)
}

val mk :
  ?is_external:bool ->
  name:string ->
  params:Value.var list ->
  ret_ty:Ty.t option ->
  Block.t list ->
  t
(** Builds the function and initializes [next_id] past every id used. *)

val entry : t -> Block.t
val fresh_var : t -> ?name:string -> Ty.t -> Value.var
val find_block : t -> string -> Block.t option
val find_block_exn : t -> string -> Block.t

val update_block : t -> Block.t -> unit
(** Replace the block with the same label. *)

val iter_instrs : t -> (Block.t -> Instr.t -> unit) -> unit
val instr_count : t -> int
val all_defs : t -> Value.var list
