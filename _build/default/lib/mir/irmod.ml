(** MIR modules (translation units): globals and functions.

    A module is the unit the instrumentation pass operates on, mirroring
    LLVM's module pass structure in the paper's MemInstrument. *)

(** One field of a global initializer, laid out in order. *)
type gfield =
  | GBytes of string  (** raw little-endian bytes *)
  | GPtr of string  (** 8-byte address of another global, patched at load *)
  | GZero of int  (** [n] zero bytes *)

type global = {
  gname : string;
  gsize : int;  (** declared size in bytes; 0 for size-zero extern decls *)
  galign : int;
  gfields : gfield list;  (** empty for extern declarations *)
  gextern : bool;
      (** declared here, defined in another (possibly uninstrumented)
          translation unit *)
  gsize_known : bool;
      (** false for C's [extern int a[];] — the size-zero array
          declarations of §4.3/§4.6 that force SoftBound to wide bounds *)
}

type t = {
  mname : string;
  mutable globals : global list;
  mutable funcs : Func.t list;
}

let mk ?(globals = []) ?(funcs = []) name =
  { mname = name; globals; funcs }

let field_size = function
  | GBytes s -> String.length s
  | GPtr _ -> 8
  | GZero n -> n

let fields_size fields = List.fold_left (fun a f -> a + field_size f) 0 fields

let mk_global ?(align = 8) ?(extern = false) ?(size_known = true) ~name
    ~size fields =
  (if fields <> [] then
     let fs = fields_size fields in
     if fs <> size then
       invalid_arg
         (Printf.sprintf "global %s: field bytes %d <> declared size %d" name
            fs size));
  {
    gname = name;
    gsize = size;
    galign = align;
    gfields = fields;
    gextern = extern;
    gsize_known = size_known;
  }

let find_func m name =
  List.find_opt (fun (f : Func.t) -> String.equal f.fname name) m.funcs

let find_func_exn m name =
  match find_func m name with
  | Some f -> f
  | None -> invalid_arg ("Irmod.find_func_exn: no function " ^ name)

let find_global m name =
  List.find_opt (fun g -> String.equal g.gname name) m.globals

let add_func m f = m.funcs <- m.funcs @ [ f ]

let add_global m g = m.globals <- m.globals @ [ g ]

(** Functions with a body (subject to instrumentation and optimization). *)
let defined_funcs m =
  List.filter (fun (f : Func.t) -> not f.is_external) m.funcs

(** Total instruction count over all defined functions. *)
let instr_count m =
  List.fold_left (fun acc f -> acc + Func.instr_count f) 0 (defined_funcs m)
