(** MIR instructions, phi nodes, and block terminators. *)

type binop =
  | Add
  | Sub
  | Mul
  | SDiv
  | UDiv
  | SRem
  | URem
  | Shl
  | LShr
  | AShr
  | And
  | Or
  | Xor

type fbinop = FAdd | FSub | FMul | FDiv

type icmp = Eq | Ne | Slt | Sle | Sgt | Sge | Ult | Ule | Ugt | Uge

type fcmp = FEq | FNe | FLt | FLe | FGt | FGe

(** Casts carry both source and destination types.  [IntToPtr] and
    [PtrToInt] are the casts §4.4 of the paper analyzes. *)
type cast = Zext | Sext | Trunc | Bitcast | IntToPtr | PtrToInt | SiToFp | FpToSi

type gep_index = { stride : int; idx : Value.t }
(** One scaled index of a [gep]: contributes [stride * idx] bytes. *)

type op =
  | Bin of binop * Ty.t * Value.t * Value.t
  | FBin of fbinop * Value.t * Value.t
  | Icmp of icmp * Ty.t * Value.t * Value.t
  | Fcmp of fcmp * Value.t * Value.t
  | Cast of cast * Ty.t * Value.t * Ty.t  (** from-type, value, to-type *)
  | Load of Ty.t * Value.t  (** [Load (ty, addr)] *)
  | Store of Ty.t * Value.t * Value.t  (** [Store (ty, value, addr)] *)
  | Gep of Value.t * gep_index list  (** base address + scaled indices *)
  | Select of Ty.t * Value.t * Value.t * Value.t  (** cond, then, else *)
  | Call of string * Value.t list  (** direct call; result in [dst] *)
  | Alloca of { size : int; align : int }  (** stack allocation, bytes *)
  | Memcpy of Value.t * Value.t * Value.t  (** dst, src, len (memmove) *)
  | Memset of Value.t * Value.t * Value.t  (** dst, byte, len *)

type t = { dst : Value.var option; op : op }

type phi = { pdst : Value.var; incoming : (string * Value.t) list }
(** [incoming] pairs a predecessor block label with the value flowing in
    along that edge. *)

type term =
  | Ret of Value.t option
  | Br of string
  | Cbr of Value.t * string * string  (** cond, then-label, else-label *)
  | Unreachable

val mk : ?dst:Value.var -> op -> t

val operands : t -> Value.t list
(** Operand values read by an instruction (not the destination). *)

val map_operands : (Value.t -> Value.t) -> t -> t
val map_term_operands : (Value.t -> Value.t) -> term -> term
val term_operands : term -> Value.t list

val successors : term -> string list
(** Successor labels, deduplicated. *)

val result_ty : op -> Ty.t option
(** Result type of an operation; [None] for void ops and for [Call]
    (whose result type is given by the destination variable). *)

val binop_to_string : binop -> string
val fbinop_to_string : fbinop -> string
val icmp_to_string : icmp -> string
val fcmp_to_string : fcmp -> string
val cast_to_string : cast -> string
