(** Evaluation of MIR arithmetic, shared by the VM interpreter and the
    constant-folding passes so both agree exactly.

    Representation: a value of type [iW] with [W <= 32] is kept in
    canonical signed form (sign-extended into the OCaml int); [i64] and
    [ptr] are OCaml native ints, so [i64] arithmetic wraps at 63 bits —
    a documented substrate simplification (DESIGN.md). *)

exception Div_by_zero
(** Raised by division/remainder with zero divisor — undefined behavior
    in C; the VM turns it into a trap. *)

val normalize : Ty.t -> int -> int
(** Canonicalize a raw bit pattern as a value of the given integer type
    (truncate + sign-extend for sub-64-bit widths). *)

val unsigned : Ty.t -> int -> int
(** Unsigned view of a canonical value (widths below 64 bits only). *)

val binop : Instr.binop -> Ty.t -> int -> int -> int
val fbinop : Instr.fbinop -> float -> float -> float

val icmp : Instr.icmp -> Ty.t -> int -> int -> int
(** Returns 0 or 1.  Unsigned predicates on [i64]/[ptr] compare the
    63-bit patterns as unsigned. *)

val fcmp : Instr.fcmp -> float -> float -> int

val cast_int : Instr.cast -> Ty.t -> Ty.t -> int -> int
(** Integer/pointer casts on canonical representations (not the float
    casts). *)
