lib/mir/intrinsics.ml: List String
