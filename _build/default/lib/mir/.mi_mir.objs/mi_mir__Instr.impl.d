lib/mir/instr.ml: List String Ty Value
