lib/mir/value.ml: Format Hashtbl Int64 Map Printf Set String Ty
