lib/mir/intrinsics.mli:
