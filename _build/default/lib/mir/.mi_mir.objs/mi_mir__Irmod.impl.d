lib/mir/irmod.ml: Func List Printf String
