lib/mir/eval.mli: Instr Ty
