lib/mir/printer.mli: Format Func Instr Irmod Value
