lib/mir/irmod.mli: Func
