lib/mir/instr.mli: Ty Value
