lib/mir/builder.mli: Block Func Instr Ty Value
