lib/mir/block.mli: Instr Value
