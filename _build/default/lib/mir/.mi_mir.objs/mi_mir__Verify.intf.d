lib/mir/verify.mli: Format Func Irmod
