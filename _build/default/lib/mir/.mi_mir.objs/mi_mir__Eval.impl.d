lib/mir/eval.ml: Instr Int64 Ty
