lib/mir/printer.ml: Block Buffer Char Format Func Instr Irmod List Printf String Ty Value
