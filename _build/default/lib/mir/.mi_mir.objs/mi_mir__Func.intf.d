lib/mir/func.mli: Block Instr Ty Value
