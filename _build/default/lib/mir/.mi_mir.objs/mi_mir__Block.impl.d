lib/mir/block.ml: Instr List
