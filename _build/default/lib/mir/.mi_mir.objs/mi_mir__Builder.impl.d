lib/mir/builder.ml: Block Func Instr List Printf Ty Value
