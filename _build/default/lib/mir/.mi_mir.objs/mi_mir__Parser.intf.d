lib/mir/parser.mli: Irmod
