lib/mir/ty.ml: Format
