lib/mir/parser.ml: Block Buffer Char Func Hashtbl Instr Irmod List Printf String Ty Value
