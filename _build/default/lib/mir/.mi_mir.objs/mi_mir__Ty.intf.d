lib/mir/ty.mli: Format
