lib/mir/func.ml: Block List Printf String Ty Value
