lib/mir/verify.ml: Block Format Func Hashtbl Instr Irmod List Mi_support Option Printf String Ty Value
