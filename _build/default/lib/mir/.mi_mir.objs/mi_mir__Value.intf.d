lib/mir/value.mli: Format Hashtbl Map Set Ty
