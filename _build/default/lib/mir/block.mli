(** Basic blocks: a label, phi nodes, a straight-line body, a
    terminator. *)

type t = {
  label : string;
  phis : Instr.phi list;
  body : Instr.t list;
  term : Instr.term;
}

val mk : ?phis:Instr.phi list -> ?body:Instr.t list -> term:Instr.term -> string -> t

val defs : t -> Value.var list
(** All variables defined by this block (phi and instruction results). *)

val map_operands : (Value.t -> Value.t) -> t -> t
(** Rewrite every operand in the block (phi incoming values, instruction
    operands, terminator operands). *)

val map_labels : (string -> string) -> t -> t
(** Rename branch targets and phi predecessor labels. *)
