(** Imperative construction of MIR functions, used by the MiniC lowering
    and by tests.  Blocks are emitted in order; the current block
    accumulates instructions until it is terminated. *)

type t = {
  fname : string;
  params : Value.var list;
  ret_ty : Ty.t option;
  mutable next_id : int;
  mutable done_blocks : Block.t list;
  mutable cur_label : string option;
  mutable cur_phis : Instr.phi list;
  mutable cur_body : Instr.t list;
}

val create :
  name:string -> params:Value.var list -> ret_ty:Ty.t option -> t

val fresh_var : t -> ?name:string -> Ty.t -> Value.var
val start_block : t -> string -> unit
val in_block : t -> bool

val add_phi : t -> Instr.phi -> unit
(** Must precede any instruction of the current block. *)

val emit : t -> Instr.op -> unit
val emit_val : t -> ?name:string -> Ty.t -> Instr.op -> Value.t

val terminate : t -> Instr.term -> unit
val ret : t -> Value.t option -> unit
val br : t -> string -> unit
val cbr : t -> Value.t -> string -> string -> unit

(** Typed emission helpers (all return the defined value). *)

val binop : t -> Instr.binop -> Ty.t -> Value.t -> Value.t -> Value.t
val fbinop : t -> Instr.fbinop -> Value.t -> Value.t -> Value.t
val icmp : t -> Instr.icmp -> Ty.t -> Value.t -> Value.t -> Value.t
val fcmp : t -> Instr.fcmp -> Value.t -> Value.t -> Value.t
val cast : t -> Instr.cast -> from:Ty.t -> into:Ty.t -> Value.t -> Value.t
val load : t -> Ty.t -> Value.t -> Value.t
val store : t -> Ty.t -> Value.t -> Value.t -> unit
val gep : t -> Value.t -> Instr.gep_index list -> Value.t
val select : t -> Ty.t -> Value.t -> Value.t -> Value.t -> Value.t
val alloca : t -> ?align:int -> int -> Value.t
val memcpy : t -> Value.t -> Value.t -> Value.t -> unit
val memset : t -> Value.t -> Value.t -> Value.t -> unit
val call : t -> ret:Ty.t option -> string -> Value.t list -> Value.t option
val call_val : t -> Ty.t -> string -> Value.t list -> Value.t

val finish : t -> Func.t
(** The current block, if any, must be terminated. *)
