(** Parser for the textual MIR produced by {!Printer}.

    Hand-written and line-oriented, with two passes per function: the
    first records the type of every SSA definition (derivable from the
    instruction syntax alone), the second builds the instructions —
    allowing uses that lexically precede their definitions (loop phis). *)

exception Parse_error of int * string
(** (line number, message) *)

val parse_module : string -> Irmod.t
(** Raises {!Parse_error}. *)

val parse_module_exn : string -> Irmod.t
(** Alias of {!parse_module}. *)

val parse_module_res : string -> (Irmod.t, string) result
