(** SSA values and operands.

    A [var] is an SSA name: it is defined exactly once (as an instruction or
    phi destination, or as a function parameter) and identified by [vid],
    which is unique within its function.  [vname] is a hint for printing
    only; identity is [vid]. *)

type var = { vid : int; vname : string; vty : Ty.t }

type t =
  | Var of var
  | Int of Ty.t * int  (** typed integer immediate; [Int (Ptr, 0)] is null *)
  | Flt of float
  | Glob of string  (** address of a global; type [Ptr] *)
  | Fn of string  (** address of a function; type [Ptr] *)

let var_equal a b = a.vid = b.vid
let var_compare a b = compare a.vid b.vid

let ty_of = function
  | Var v -> v.vty
  | Int (ty, _) -> ty
  | Flt _ -> Ty.F64
  | Glob _ | Fn _ -> Ty.Ptr

let null = Int (Ty.Ptr, 0)
let i64 k = Int (Ty.I64, k)
let i32 k = Int (Ty.I32, k)
let i1 b = Int (Ty.I1, if b then 1 else 0)

let is_const = function Var _ -> false | _ -> true

let equal a b =
  match (a, b) with
  | Var x, Var y -> x.vid = y.vid
  | Int (t1, k1), Int (t2, k2) -> Ty.equal t1 t2 && k1 = k2
  | Flt x, Flt y -> Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y)
  | Glob g1, Glob g2 | Fn g1, Fn g2 -> String.equal g1 g2
  | _ -> false

let var_to_string v = Printf.sprintf "%%%s.%d" v.vname v.vid

let to_string = function
  | Var v -> var_to_string v
  | Int (Ty.Ptr, 0) -> "null"
  | Int (ty, k) -> Printf.sprintf "%d:%s" k (Ty.to_string ty)
  | Flt f -> Printf.sprintf "%h" f
  | Glob g -> "@" ^ g
  | Fn f -> "&" ^ f

let pp fmt v = Format.pp_print_string fmt (to_string v)

(** Maps and sets over SSA variables, keyed by id. *)
module VMap = Map.Make (struct
  type t = var

  let compare = var_compare
end)

module VSet = Set.Make (struct
  type t = var

  let compare = var_compare
end)

module VTbl = Hashtbl.Make (struct
  type t = var

  let equal = var_equal
  let hash v = v.vid
end)
