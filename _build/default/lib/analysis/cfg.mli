(** Control-flow graph of a function, with blocks numbered densely.
    Block 0 is always the entry block; unreachable blocks keep their
    numbers and are marked in {!field-reachable}. *)

open Mi_mir

type t = {
  func : Func.t;
  blocks : Block.t array;  (** index -> block *)
  index_of : (string, int) Hashtbl.t;  (** label -> index *)
  succs : int list array;
  preds : int list array;
  reachable : bool array;  (** from entry *)
}

val build : Func.t -> t
val n_blocks : t -> int

val index : t -> string -> int
(** Index of the block with the given label; raises on unknown labels. *)

val block : t -> int -> Block.t
val label : t -> int -> string

val rev_postorder : t -> int array
(** Blocks in reverse postorder of the DFS from entry (unreachable blocks
    excluded); the iteration order the dominator solver wants. *)

val postorder : t -> int array
