(** Control-flow graph of a function, with blocks numbered densely.

    Block 0 is always the entry block.  Unreachable blocks are included in
    the numbering (analyses that care filter on [reachable]). *)

open Mi_mir

type t = {
  func : Func.t;
  blocks : Block.t array;  (** index -> block *)
  index_of : (string, int) Hashtbl.t;  (** label -> index *)
  succs : int list array;
  preds : int list array;
  reachable : bool array;  (** from entry *)
}

let build (f : Func.t) : t =
  let blocks = Array.of_list f.blocks in
  let n = Array.length blocks in
  let index_of = Hashtbl.create n in
  Array.iteri (fun i (b : Block.t) -> Hashtbl.replace index_of b.label i) blocks;
  let succs = Array.make n [] in
  let preds = Array.make n [] in
  Array.iteri
    (fun i (b : Block.t) ->
      let ss =
        List.map
          (fun l ->
            match Hashtbl.find_opt index_of l with
            | Some j -> j
            | None -> invalid_arg ("Cfg.build: unknown label " ^ l))
          (Instr.successors b.term)
      in
      succs.(i) <- ss;
      List.iter (fun j -> preds.(j) <- i :: preds.(j)) ss)
    blocks;
  Array.iteri (fun i ps -> preds.(i) <- List.rev ps) preds;
  let reachable = Array.make n false in
  let rec dfs i =
    if not reachable.(i) then begin
      reachable.(i) <- true;
      List.iter dfs succs.(i)
    end
  in
  if n > 0 then dfs 0;
  { func = f; blocks; index_of; succs; preds; reachable }

let n_blocks t = Array.length t.blocks

let index t label =
  match Hashtbl.find_opt t.index_of label with
  | Some i -> i
  | None -> invalid_arg ("Cfg.index: unknown label " ^ label)

let block t i = t.blocks.(i)
let label t i = t.blocks.(i).Block.label

(** Blocks in reverse postorder of the depth-first walk from entry
    (unreachable blocks excluded). *)
let rev_postorder t : int array =
  let n = n_blocks t in
  let visited = Array.make n false in
  let order = ref [] in
  let rec dfs i =
    if not visited.(i) then begin
      visited.(i) <- true;
      List.iter dfs t.succs.(i);
      order := i :: !order
    end
  in
  if n > 0 then dfs 0;
  Array.of_list !order

(** Postorder (reverse of [rev_postorder]). *)
let postorder t : int array =
  let rpo = rev_postorder t in
  let n = Array.length rpo in
  Array.init n (fun i -> rpo.(n - 1 - i))
