(** SSA dominance verification: every use of a variable must be dominated
    by its definition.  Complements [Mi_mir.Verify], which checks only
    structural properties; together they gate every pass and the
    instrumenter in the test suite. *)

open Mi_mir

type error = string

val check_func : Func.t -> error list
val check_module : Irmod.t -> error list

val assert_valid : Irmod.t -> unit
(** Structural ([Mi_mir.Verify]) + dominance verification; raises
    [Failure] with all messages on the first invalid module. *)
