(** Natural loop detection from back edges.

    A back edge is an edge [t -> h] where [h] dominates [t]; the natural
    loop of the edge is [h] plus all blocks that reach [t] without passing
    through [h].  Loops with the same header are merged.  Used by LICM and
    the loop unroller. *)

type loop = {
  header : int;
  body : int list;  (** all blocks of the loop, including the header *)
  latches : int list;  (** sources of back edges into the header *)
  depth : int;  (** nesting depth, outermost = 1 *)
  parent : int option;  (** header of the enclosing loop *)
}

type t = {
  loops : loop list;  (** outermost-first *)
  loop_of_block : (int, int) Hashtbl.t;
      (** block index -> header of the innermost containing loop *)
}

let build (cfg : Cfg.t) (dom : Dom.t) : t =
  (* collect back edges grouped by header *)
  let by_header : (int, int list ref) Hashtbl.t = Hashtbl.create 8 in
  Array.iteri
    (fun b succs ->
      if cfg.Cfg.reachable.(b) then
        List.iter
          (fun s ->
            if Dom.dominates dom s b then
              match Hashtbl.find_opt by_header s with
              | Some l -> l := b :: !l
              | None -> Hashtbl.add by_header s (ref [ b ]))
          succs)
    cfg.Cfg.succs;
  (* natural loop of each header *)
  let raw_loops =
    Hashtbl.fold
      (fun header latches acc ->
        let in_loop = Hashtbl.create 8 in
        Hashtbl.replace in_loop header ();
        let rec walk b =
          if not (Hashtbl.mem in_loop b) then begin
            Hashtbl.replace in_loop b ();
            List.iter walk cfg.Cfg.preds.(b)
          end
        in
        List.iter walk !latches;
        let body =
          Hashtbl.fold (fun b () acc -> b :: acc) in_loop []
          |> List.sort compare
        in
        (header, body, List.sort compare !latches) :: acc)
      by_header []
  in
  (* nesting: loop A contains loop B if A's body contains B's header and
     A <> B *)
  let contains (_, body_a, _) (hb, _, _) = List.mem hb body_a in
  let loops =
    List.map
      (fun ((h, body, latches) as l) ->
        let enclosing =
          List.filter (fun ((h2, _, _) as l2) -> h2 <> h && contains l2 l)
            raw_loops
        in
        let depth = 1 + List.length enclosing in
        (* innermost enclosing loop = the one with max depth, i.e. smallest
           body *)
        let parent =
          match
            List.sort
              (fun (_, b1, _) (_, b2, _) ->
                compare (List.length b1) (List.length b2))
              enclosing
          with
          | [] -> None
          | (hp, _, _) :: _ -> Some hp
        in
        { header = h; body; latches; depth; parent })
      raw_loops
    |> List.sort (fun a b -> compare a.depth b.depth)
  in
  let loop_of_block = Hashtbl.create 16 in
  (* outermost first, so innermost writes last and wins *)
  List.iter
    (fun l -> List.iter (fun b -> Hashtbl.replace loop_of_block b l.header) l.body)
    loops;
  { loops; loop_of_block }

let innermost_header t b = Hashtbl.find_opt t.loop_of_block b

let find_loop t header = List.find_opt (fun l -> l.header = header) t.loops

(** Blocks outside the loop that the loop branches to. *)
let exits (cfg : Cfg.t) (l : loop) : int list =
  List.concat_map
    (fun b ->
      List.filter (fun s -> not (List.mem s l.body)) cfg.Cfg.succs.(b))
    l.body
  |> List.sort_uniq compare

(** The unique block outside the loop that jumps to the header, if any. *)
let preheader (cfg : Cfg.t) (l : loop) : int option =
  match
    List.filter (fun p -> not (List.mem p l.body)) cfg.Cfg.preds.(l.header)
  with
  | [ p ] -> if cfg.Cfg.succs.(p) = [ l.header ] then Some p else None
  | _ -> None
