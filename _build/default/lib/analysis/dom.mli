(** Dominator tree and dominance frontiers (Cooper–Harvey–Kennedy,
    "A Simple, Fast Dominance Algorithm").

    Used by SSA construction, GVN, LICM, and the dominance-based check
    elimination of the paper's §5.3. *)

type t = {
  cfg : Cfg.t;
  idom : int array;
      (** immediate dominator per block; [idom.(0) = 0]; -1 if
          unreachable *)
  children : int list array;  (** dominator-tree children *)
  dfs_in : int array;
  dfs_out : int array;  (** O(1) dominance queries via DFS intervals *)
}

val build : Cfg.t -> t

val dominates : t -> int -> int -> bool
(** [dominates t a b]: does block [a] dominate block [b]?  Reflexive;
    false when either block is unreachable. *)

val strictly_dominates : t -> int -> int -> bool

val idom : t -> int -> int option
(** Immediate dominator; [None] for the entry block and unreachable
    blocks. *)

val frontiers : t -> int list array
(** Dominance frontier of every block (for SSA phi placement). *)

val dom_preorder : t -> int list
(** Blocks in a preorder walk of the dominator tree (scoped-table
    traversal order for GVN). *)
