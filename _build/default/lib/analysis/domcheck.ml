(** SSA dominance verification: every use of a variable must be dominated
    by its definition.  Complements [Mi_mir.Verify], which checks only
    structural properties. *)

open Mi_mir

type error = string

(* Location of each definition: block index and position within the block.
   Params and phis get position -1 (before all body instructions). *)
type defsite = { dblock : int; dpos : int }

let check_func (f : Func.t) : error list =
  if f.is_external then []
  else begin
    let cfg = Cfg.build f in
    let dom = Dom.build cfg in
    let errors = ref [] in
    let sites : defsite Value.VTbl.t = Value.VTbl.create 64 in
    List.iter
      (fun p -> Value.VTbl.replace sites p { dblock = 0; dpos = -1 })
      f.params;
    Array.iteri
      (fun bi (b : Block.t) ->
        List.iter
          (fun (p : Instr.phi) ->
            Value.VTbl.replace sites p.pdst { dblock = bi; dpos = -1 })
          b.phis;
        List.iteri
          (fun pos (i : Instr.t) ->
            match i.dst with
            | Some d -> Value.VTbl.replace sites d { dblock = bi; dpos = pos }
            | None -> ())
          b.body)
      cfg.blocks;
    let check_use ~where ~ublock ~upos (v : Value.t) =
      match v with
      | Var x -> (
          match Value.VTbl.find_opt sites x with
          | None ->
              errors :=
                Printf.sprintf "%s: %s has no definition site" where
                  (Value.var_to_string x)
                :: !errors
          | Some { dblock; dpos } ->
              let ok =
                if dblock = ublock then dpos < upos
                else Dom.strictly_dominates dom dblock ublock
              in
              if not ok then
                errors :=
                  Printf.sprintf "%s: use of %s not dominated by its def"
                    where (Value.var_to_string x)
                  :: !errors)
      | _ -> ()
    in
    Array.iteri
      (fun bi (b : Block.t) ->
        let where = Printf.sprintf "%s:%s" f.fname b.label in
        if cfg.reachable.(bi) then begin
          (* A phi use must be dominated by its def at the end of the
             corresponding predecessor block. *)
          List.iter
            (fun (p : Instr.phi) ->
              List.iter
                (fun (lbl, v) ->
                  let pred = Cfg.index cfg lbl in
                  check_use ~where ~ublock:pred ~upos:max_int v)
                p.incoming)
            b.phis;
          List.iteri
            (fun pos (i : Instr.t) ->
              List.iter (check_use ~where ~ublock:bi ~upos:pos)
                (Instr.operands i))
            b.body;
          List.iter
            (check_use ~where ~ublock:bi ~upos:max_int)
            (Instr.term_operands b.term)
        end)
      cfg.blocks;
    List.rev !errors
  end

let check_module (m : Irmod.t) : error list =
  List.concat_map check_func m.funcs

(** Structural + dominance verification; raises [Failure] on error. *)
let assert_valid m =
  Verify.assert_valid_module m;
  match check_module m with
  | [] -> ()
  | errs -> failwith ("SSA dominance check failed:\n" ^ String.concat "\n" errs)
