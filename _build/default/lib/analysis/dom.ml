(** Dominator tree and dominance frontiers.

    Implementation of Cooper, Harvey, Kennedy — "A Simple, Fast Dominance
    Algorithm".  Used by SSA construction (mem2reg), GVN, LICM, and the
    dominance-based check elimination of §5.3 of the paper. *)

type t = {
  cfg : Cfg.t;
  idom : int array;  (** immediate dominator; [idom.(0) = 0]; -1 if unreachable *)
  children : int list array;  (** dominator-tree children *)
  dfs_in : int array;
  dfs_out : int array;  (** dominance query via DFS intervals *)
}

let build (cfg : Cfg.t) : t =
  let n = Cfg.n_blocks cfg in
  let rpo = Cfg.rev_postorder cfg in
  (* position of each block in reverse postorder *)
  let rpo_pos = Array.make n (-1) in
  Array.iteri (fun pos b -> rpo_pos.(b) <- pos) rpo;
  let idom = Array.make n (-1) in
  if n > 0 then idom.(0) <- 0;
  let intersect b1 b2 =
    let f1 = ref b1 and f2 = ref b2 in
    while !f1 <> !f2 do
      while rpo_pos.(!f1) > rpo_pos.(!f2) do
        f1 := idom.(!f1)
      done;
      while rpo_pos.(!f2) > rpo_pos.(!f1) do
        f2 := idom.(!f2)
      done
    done;
    !f1
  in
  let changed = ref true in
  while !changed do
    changed := false;
    Array.iter
      (fun b ->
        if b <> 0 then begin
          (* pick first processed predecessor *)
          let new_idom = ref (-1) in
          List.iter
            (fun p ->
              if idom.(p) <> -1 then
                if !new_idom = -1 then new_idom := p
                else new_idom := intersect p !new_idom)
            cfg.preds.(b);
          if !new_idom <> -1 && idom.(b) <> !new_idom then begin
            idom.(b) <- !new_idom;
            changed := true
          end
        end)
      rpo
  done;
  let children = Array.make n [] in
  for b = n - 1 downto 1 do
    if idom.(b) <> -1 then children.(idom.(b)) <- b :: children.(idom.(b))
  done;
  (* DFS numbering of the dominator tree for O(1) dominance queries *)
  let dfs_in = Array.make n (-1) in
  let dfs_out = Array.make n (-1) in
  let counter = ref 0 in
  let rec dfs b =
    dfs_in.(b) <- !counter;
    incr counter;
    List.iter dfs children.(b);
    dfs_out.(b) <- !counter;
    incr counter
  in
  if n > 0 then dfs 0;
  { cfg; idom; children; dfs_in; dfs_out }

(** [dominates t a b]: does block [a] dominate block [b]?  Reflexive.
    False when either block is unreachable. *)
let dominates t a b =
  t.dfs_in.(a) >= 0 && t.dfs_in.(b) >= 0
  && t.dfs_in.(a) <= t.dfs_in.(b)
  && t.dfs_out.(b) <= t.dfs_out.(a)

let strictly_dominates t a b = a <> b && dominates t a b

let idom t b = if b = 0 then None else if t.idom.(b) = -1 then None else Some t.idom.(b)

(** Dominance frontier per block (Cooper-Harvey-Kennedy §4). *)
let frontiers (t : t) : int list array =
  let n = Cfg.n_blocks t.cfg in
  let df = Array.make n [] in
  for b = 0 to n - 1 do
    let preds = t.cfg.preds.(b) in
    if List.length preds >= 2 && t.dfs_in.(b) >= 0 then
      List.iter
        (fun p ->
          if t.dfs_in.(p) >= 0 then begin
            let runner = ref p in
            while !runner <> t.idom.(b) do
              if not (List.mem b df.(!runner)) then
                df.(!runner) <- b :: df.(!runner);
              runner := t.idom.(!runner)
            done
          end)
        preds
  done;
  df

(** Blocks in a preorder walk of the dominator tree. *)
let dom_preorder t : int list =
  let out = ref [] in
  let rec go b =
    out := b :: !out;
    List.iter go t.children.(b)
  in
  if Cfg.n_blocks t.cfg > 0 then go 0;
  List.rev !out
