lib/analysis/loops.mli: Cfg Dom Hashtbl
