lib/analysis/domcheck.mli: Func Irmod Mi_mir
