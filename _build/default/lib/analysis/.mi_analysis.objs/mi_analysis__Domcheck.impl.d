lib/analysis/domcheck.ml: Array Block Cfg Dom Func Instr Irmod List Mi_mir Printf String Value Verify
