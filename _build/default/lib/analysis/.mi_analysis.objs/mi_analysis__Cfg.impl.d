lib/analysis/cfg.ml: Array Block Func Hashtbl Instr List Mi_mir
