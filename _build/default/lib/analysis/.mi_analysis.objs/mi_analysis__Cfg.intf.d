lib/analysis/cfg.mli: Block Func Hashtbl Mi_mir
