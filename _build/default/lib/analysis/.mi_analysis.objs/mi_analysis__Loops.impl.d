lib/analysis/loops.ml: Array Cfg Dom Hashtbl List
