(** Natural loop detection from back edges (edges whose target dominates
    their source), with nesting. *)

type loop = {
  header : int;
  body : int list;  (** all blocks of the loop, including the header *)
  latches : int list;  (** sources of back edges into the header *)
  depth : int;  (** nesting depth, outermost = 1 *)
  parent : int option;  (** header of the innermost enclosing loop *)
}

type t = {
  loops : loop list;  (** sorted outermost-first *)
  loop_of_block : (int, int) Hashtbl.t;
      (** block index -> header of the innermost containing loop *)
}

val build : Cfg.t -> Dom.t -> t
val innermost_header : t -> int -> int option
val find_loop : t -> int -> loop option

val exits : Cfg.t -> loop -> int list
(** Blocks outside the loop that the loop branches to. *)

val preheader : Cfg.t -> loop -> int option
(** The unique block outside the loop that branches only to the header,
    if it exists — the landing pad LICM hoists into. *)
