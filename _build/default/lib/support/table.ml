(** Plain-text table rendering for experiment reports.

    The benchmark harness prints the same rows the paper's tables and figure
    series report; this module keeps the formatting in one place. *)

type align = Left | Right

type t = {
  headers : string list;
  aligns : align list;
  mutable rows : string list list; (* newest first *)
}

let create ?(aligns = []) headers =
  let aligns =
    if aligns = [] then List.map (fun _ -> Left) headers else aligns
  in
  if List.length aligns <> List.length headers then
    invalid_arg "Table.create: aligns/headers length mismatch";
  { headers; aligns; rows = [] }

let add_row t row =
  if List.length row <> List.length t.headers then
    invalid_arg "Table.add_row: wrong arity";
  t.rows <- row :: t.rows

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else
    match align with
    | Left -> s ^ String.make (width - n) ' '
    | Right -> String.make (width - n) ' ' ^ s

let render t =
  let rows = List.rev t.rows in
  let widths =
    List.mapi
      (fun i h ->
        List.fold_left
          (fun acc row -> max acc (String.length (List.nth row i)))
          (String.length h) rows)
      t.headers
  in
  let buf = Buffer.create 256 in
  let line cells =
    List.iteri
      (fun i cell ->
        if i > 0 then Buffer.add_string buf "  ";
        Buffer.add_string buf
          (pad (List.nth t.aligns i) (List.nth widths i) cell))
      cells;
    Buffer.add_char buf '\n'
  in
  line t.headers;
  line (List.map (fun w -> String.make w '-') widths);
  List.iter line rows;
  Buffer.contents buf

let print t = print_string (render t)
