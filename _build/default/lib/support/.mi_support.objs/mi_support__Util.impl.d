lib/support/util.ml: Array List Printf
