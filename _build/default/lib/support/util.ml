(** Miscellaneous helpers shared across the project. *)

(** [round_up_pow2 n] is the least power of two [>= n]; [n] must be
    positive. *)
let round_up_pow2 n =
  if n <= 0 then invalid_arg "round_up_pow2";
  let rec go p = if p >= n then p else go (p * 2) in
  go 1

(** [is_pow2 n] holds iff [n] is a positive power of two. *)
let is_pow2 n = n > 0 && n land (n - 1) = 0

(** [log2_exact n] is [log2 n] for a positive power of two. *)
let log2_exact n =
  if not (is_pow2 n) then invalid_arg "log2_exact";
  let rec go n acc = if n = 1 then acc else go (n lsr 1) (acc + 1) in
  go n 0

(** [align_up x a] rounds [x] up to a multiple of the power of two [a]. *)
let align_up x a =
  if not (is_pow2 a) then invalid_arg "align_up: alignment not a power of 2";
  (x + a - 1) land lnot (a - 1)

(** Geometric mean of a non-empty list of positive floats. *)
let geomean xs =
  match xs with
  | [] -> invalid_arg "geomean: empty"
  | _ ->
      let n = List.length xs in
      exp (List.fold_left (fun acc x -> acc +. log x) 0.0 xs /. float_of_int n)

(** Median of a non-empty list of floats. *)
let median xs =
  match xs with
  | [] -> invalid_arg "median: empty"
  | _ ->
      let arr = Array.of_list xs in
      Array.sort compare arr;
      let n = Array.length arr in
      if n mod 2 = 1 then arr.(n / 2)
      else (arr.((n / 2) - 1) +. arr.(n / 2)) /. 2.0

(** [percent num den] is [100 * num / den] as a float, 0 if [den = 0]. *)
let percent num den =
  if den = 0 then 0.0 else 100.0 *. float_of_int num /. float_of_int den

let spf = Printf.sprintf
