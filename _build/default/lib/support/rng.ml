(** Deterministic pseudo-random number generation.

    All randomness in the workload generators and the VM's [mi_rand] builtin
    flows through this module so that every experiment is exactly
    reproducible.  The generator is splitmix64 (Steele et al., OOPSLA'14),
    which is small, fast, and has well-understood statistical quality. *)

type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

(* One splitmix64 step: advance by the golden-gamma and mix. *)
let next_int64 t =
  let open Int64 in
  t.state <- add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

(** [bits t] returns a non-negative 62-bit pseudo-random integer. *)
let bits t = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2)

(** [int t n] returns a uniform integer in [0, n).  Raises
    [Invalid_argument] if [n <= 0]. *)
let int t n =
  if n <= 0 then invalid_arg "Rng.int: bound must be positive";
  bits t mod n

(** [int_range t lo hi] returns a uniform integer in [lo, hi] inclusive. *)
let int_range t lo hi =
  if hi < lo then invalid_arg "Rng.int_range: empty range";
  lo + int t (hi - lo + 1)

(** [float t] returns a uniform float in [0, 1). *)
let float t = Stdlib.float_of_int (bits t) /. 4611686018427387904.0

(** [bool t] returns a uniform boolean. *)
let bool t = bits t land 1 = 1

(** [choose t arr] picks a uniform element of [arr]. *)
let choose t arr =
  if Array.length arr = 0 then invalid_arg "Rng.choose: empty array";
  arr.(int t (Array.length arr))

(** [shuffle t arr] shuffles [arr] in place (Fisher-Yates). *)
let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done
