(** Run a MiniC program under both memory-safety instrumentations and
    compare their verdicts — the "sanitize my program" workflow of the
    paper's artifact.

    {v
    memsafe prog.c            # verdicts from both approaches
    memsafe --cases           # replay the §4 usability case studies
    v} *)

open Cmdliner
module Config = Mi_core.Config
module Usability = Mi_bench_kit.Usability

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let verdict_string (r : Mi_bench_kit.Harness.run) =
  match r.outcome with
  | Mi_vm.Interp.Exited code -> Printf.sprintf "ran to completion (exit %d)" code
  | Mi_vm.Interp.Safety_violation { checker; reason } ->
      Printf.sprintf "VIOLATION reported by %s: %s" checker reason
  | Mi_vm.Interp.Trapped msg -> Printf.sprintf "VM trap: %s" msg

let run_file file =
  let code = read_file file in
  let sources = [ Mi_bench_kit.Bench.src (Filename.basename file) code ] in
  List.iter
    (fun (label, approach) ->
      let cfg = Config.of_approach approach in
      let setup =
        Mi_bench_kit.Harness.with_config cfg Mi_bench_kit.Harness.baseline
      in
      let r = Mi_bench_kit.Harness.run_sources setup sources in
      Printf.printf "%-18s %s\n" (label ^ ":") (verdict_string r);
      if r.output <> "" then
        Printf.printf "%-18s %s\n" "  program output:"
          (String.concat " | " (String.split_on_char '\n' (String.trim r.output))))
    [ ("SoftBound", Config.Softbound); ("Low-Fat Pointers", Config.Lowfat) ];
  0

let run_cases () =
  List.iter
    (fun (c : Usability.case) ->
      Printf.printf "--- %s (§%s) ---\n" c.case_name c.section;
      List.iter
        (fun approach ->
          let verdict, _ = Usability.run_case c approach in
          let expected = Usability.expected c approach in
          Printf.printf "  %-10s %-18s (expected: %s)%s\n"
            (Config.approach_name approach)
            (Usability.verdict_to_string verdict)
            (Usability.verdict_to_string expected)
            (if verdict = expected then "" else "  <-- MISMATCH"))
        [ Config.Softbound; Config.Lowfat ];
      Printf.printf "  %s\n\n" c.explain)
    (Usability.all @ Mi_bench_kit.Excluded.all);
  0

let main file cases =
  if cases then run_cases ()
  else
    match file with
    | Some f -> run_file f
    | None ->
        prerr_endline "memsafe: expected FILE.c or --cases";
        2

let file_arg = Arg.(value & pos 0 (some file) None & info [] ~docv:"FILE.c")

let cases_arg =
  Arg.(
    value & flag
    & info [ "cases" ]
        ~doc:"replay the paper's §4 usability case studies instead")

let cmd =
  Cmd.v
    (Cmd.info "memsafe"
       ~doc:"check a MiniC program with SoftBound and Low-Fat Pointers")
    Term.(const main $ file_arg $ cases_arg)

let () = exit (Cmd.eval' cmd)
