(* Tests for the SoftBound runtime: trie, shadow stack, metadata copy,
   check semantics, and wrappers. *)

open Mi_vm
module SB = Mi_softbound.Softbound_rt

let setup () =
  let st = State.create () in
  Builtins.install st;
  let sb = SB.install st in
  (st, sb)

let test_trie_roundtrip () =
  let _, sb = setup () in
  let addr = Layout.heap_base + 1024 in
  SB.trie_store sb addr ~base:111 ~bound:222;
  Alcotest.(check (pair int int)) "roundtrip" (111, 222) (SB.trie_load sb addr)

let test_trie_default_null () =
  let _, sb = setup () in
  Alcotest.(check (pair int int)) "unset slot has null bounds" (0, 0)
    (SB.trie_load sb (Layout.heap_base + 99992))

let prop_trie_many_slots =
  QCheck.Test.make ~name:"trie distinguishes 8-byte slots" ~count:200
    QCheck.(pair (int_range 0 100000) (int_range 0 100000))
    (fun (s1, s2) ->
      let _, sb = setup () in
      let a1 = Layout.heap_base + (s1 * 8) in
      let a2 = Layout.heap_base + (s2 * 8) in
      SB.trie_store sb a1 ~base:(s1 + 1) ~bound:(s1 + 2);
      SB.trie_store sb a2 ~base:(s2 + 101) ~bound:(s2 + 102);
      SB.trie_load sb a2 = (s2 + 101, s2 + 102)
      && (s1 = s2 || SB.trie_load sb a1 = (s1 + 1, s1 + 2)))

let test_meta_copy () =
  let _, sb = setup () in
  let src = Layout.heap_base and dst = Layout.heap_base + 4096 in
  SB.trie_store sb src ~base:10 ~bound:20;
  SB.trie_store sb (src + 8) ~base:30 ~bound:40;
  SB.meta_copy sb ~dst ~src 16;
  Alcotest.(check (pair int int)) "first slot" (10, 20) (SB.trie_load sb dst);
  Alcotest.(check (pair int int)) "second slot" (30, 40)
    (SB.trie_load sb (dst + 8))

let test_shadow_stack_nesting () =
  let _, sb = setup () in
  SB.ss_enter sb 2;
  SB.ss_set_base sb 1 100;
  SB.ss_set_bound sb 1 200;
  (* nested call with its own frame *)
  SB.ss_enter sb 1;
  SB.ss_set_base sb 1 300;
  SB.ss_set_bound sb 1 400;
  Alcotest.(check int) "inner frame slot" 300 (SB.ss_get_base sb 1);
  SB.ss_set_base sb 0 999;
  SB.ss_leave sb;
  (* outer frame is intact *)
  Alcotest.(check int) "outer frame restored" 100 (SB.ss_get_base sb 1);
  Alcotest.(check int) "outer bound" 200 (SB.ss_get_bound sb 1);
  SB.ss_leave sb

let test_shadow_stack_growth () =
  let _, sb = setup () in
  (* more frames than the initial capacity of the backing array *)
  for i = 1 to 3000 do
    SB.ss_enter sb 3;
    SB.ss_set_base sb 3 i
  done;
  Alcotest.(check int) "deep slot" 3000 (SB.ss_get_base sb 3);
  for _ = 1 to 3000 do
    SB.ss_leave sb
  done

let violation f =
  match f () with
  | exception State.Safety_abort { checker = "softbound"; _ } -> true
  | () -> false

let test_check_semantics () =
  let st, _ = setup () in
  let base = Layout.heap_base and bound = Layout.heap_base + 24 in
  Alcotest.(check bool) "in bounds" false
    (violation (fun () -> SB.check st base 8 ~base ~bound));
  Alcotest.(check bool) "exact end ok" false
    (violation (fun () -> SB.check st (base + 16) 8 ~base ~bound));
  Alcotest.(check bool) "one past end detected" true
    (violation (fun () -> SB.check st (base + 17) 8 ~base ~bound));
  Alcotest.(check bool) "underflow detected" true
    (violation (fun () -> SB.check st (base - 1) 1 ~base ~bound));
  Alcotest.(check bool) "null bounds always report" true
    (violation (fun () -> SB.check st base 1 ~base:0 ~bound:0))

let test_check_wide_counting () =
  let st, _ = setup () in
  SB.check st Layout.heap_base 8 ~base:0 ~bound:Layout.wide_bound;
  SB.check st Layout.heap_base 8 ~base:Layout.heap_base
    ~bound:(Layout.heap_base + 8);
  Alcotest.(check int) "two checks" 2 (State.counter st "sb.checks");
  Alcotest.(check int) "one wide" 1 (State.counter st "sb.checks_wide")

let test_wrapper_strcpy_propagates_ret_bounds () =
  let st, sb = setup () in
  (* caller protocol for strcpy(dst, src): 2 pointer args *)
  let dst = State.std_malloc st 32 and src = State.std_malloc st 32 in
  Memory.store_cstring st.State.mem src "hi";
  SB.ss_enter sb 2;
  SB.ss_set_base sb 1 dst;
  SB.ss_set_bound sb 1 (dst + 32);
  SB.ss_set_base sb 2 src;
  SB.ss_set_bound sb 2 (src + 32);
  let w = Option.get (State.find_builtin st "__sbw_strcpy") in
  let r = w st [| State.I dst; State.I src |] in
  Alcotest.(check int) "returns dst" dst (State.as_int (Option.get r));
  Alcotest.(check int) "ret slot base" dst (SB.ss_get_base sb 0);
  Alcotest.(check int) "ret slot bound" (dst + 32) (SB.ss_get_bound sb 0);
  SB.ss_leave sb;
  Alcotest.(check string) "copied" "hi" (Memory.load_cstring st.State.mem dst)

let test_wrapper_realloc_copies_metadata () =
  let st, sb = setup () in
  let p = State.std_malloc st 16 in
  (* the block holds one pointer with metadata *)
  SB.trie_store sb p ~base:777 ~bound:888;
  SB.ss_enter sb 1;
  let w = Option.get (State.find_builtin st "__sbw_realloc") in
  let r = w st [| State.I p; State.I 64 |] in
  let q = State.as_int (Option.get r) in
  Alcotest.(check bool) "moved" true (q <> p);
  Alcotest.(check (pair int int)) "metadata moved" (777, 888)
    (SB.trie_load sb q);
  Alcotest.(check int) "ret bounds set" q (SB.ss_get_base sb 0);
  Alcotest.(check int) "ret bound" (q + 64) (SB.ss_get_bound sb 0);
  SB.ss_leave sb

let () =
  Alcotest.run "softbound"
    [
      ( "trie",
        [
          Alcotest.test_case "roundtrip" `Quick test_trie_roundtrip;
          Alcotest.test_case "default null bounds" `Quick test_trie_default_null;
          QCheck_alcotest.to_alcotest prop_trie_many_slots;
          Alcotest.test_case "meta copy" `Quick test_meta_copy;
        ] );
      ( "shadow-stack",
        [
          Alcotest.test_case "nesting" `Quick test_shadow_stack_nesting;
          Alcotest.test_case "growth" `Quick test_shadow_stack_growth;
        ] );
      ( "checks",
        [
          Alcotest.test_case "semantics" `Quick test_check_semantics;
          Alcotest.test_case "wide counting" `Quick test_check_wide_counting;
        ] );
      ( "wrappers",
        [
          Alcotest.test_case "strcpy bounds" `Quick
            test_wrapper_strcpy_propagates_ret_bounds;
          Alcotest.test_case "realloc metadata" `Quick
            test_wrapper_realloc_copies_metadata;
        ] );
    ]
