(* Tests for CFG construction, dominators (against a naive reference
   implementation), loop detection, and SSA dominance checking. *)

open Mi_mir
module Cfg = Mi_analysis.Cfg
module Dom = Mi_analysis.Dom
module Loops = Mi_analysis.Loops

(* Build a function whose CFG has the given shape: blocks 0..n-1 with the
   given successor lists (0 or 1 or 2 successors). *)
let func_of_shape (succs : int list array) : Func.t =
  let label i = Printf.sprintf "b%d" i in
  let blocks =
    Array.to_list
      (Array.mapi
         (fun i ss ->
           let term =
             match ss with
             | [] -> Instr.Ret None
             | [ s ] -> Instr.Br (label s)
             | [ s1; s2 ] ->
                 Instr.Cbr (Value.Var { Value.vid = 0; vname = "c"; vty = Ty.I1 }, label s1, label s2)
             | _ -> invalid_arg "too many successors"
           in
           Block.mk ~term (label i))
         succs)
  in
  Func.mk ~name:"shape"
    ~params:[ { Value.vid = 0; vname = "c"; vty = Ty.I1 } ]
    ~ret_ty:None blocks

(* Naive dominator computation straight from the definition: block d
   dominates b iff removing d makes b unreachable from entry. *)
let naive_dominates (succs : int list array) d b =
  let n = Array.length succs in
  if d = b then true
  else begin
    let reached = Array.make n false in
    let rec dfs i =
      if (not reached.(i)) && i <> d then begin
        reached.(i) <- true;
        List.iter dfs succs.(i)
      end
    in
    if d <> 0 then dfs 0;
    (* b unreachable without d -> d dominates b, provided b is reachable
       at all *)
    let reachable_at_all = Array.make n false in
    let rec dfs2 i =
      if not reachable_at_all.(i) then begin
        reachable_at_all.(i) <- true;
        List.iter dfs2 succs.(i)
      end
    in
    dfs2 0;
    reachable_at_all.(b) && not reached.(b)
  end

let diamond = [| [ 1; 2 ]; [ 3 ]; [ 3 ]; [] |]

let loop_shape = [| [ 1 ]; [ 2; 3 ]; [ 1 ]; [] |] (* 1 is a loop header *)

let nested_loops =
  (* 0 -> 1(outer hdr) -> 2(inner hdr) -> 3 -> 2 | 4 ; 4 -> 1 | 5 *)
  [| [ 1 ]; [ 2 ]; [ 3 ]; [ 2; 4 ]; [ 1; 5 ]; [] |]

let test_cfg_diamond () =
  let f = func_of_shape diamond in
  let cfg = Cfg.build f in
  Alcotest.(check (list int)) "succs of 0" [ 1; 2 ] cfg.Cfg.succs.(0);
  Alcotest.(check (list int)) "preds of 3" [ 1; 2 ] (List.sort compare cfg.Cfg.preds.(3));
  Alcotest.(check bool) "all reachable" true (Array.for_all Fun.id cfg.Cfg.reachable)

let test_cfg_unreachable () =
  let f = func_of_shape [| []; [ 0 ] |] in
  let cfg = Cfg.build f in
  Alcotest.(check bool) "entry reachable" true cfg.Cfg.reachable.(0);
  Alcotest.(check bool) "orphan not reachable" false cfg.Cfg.reachable.(1)

let test_rpo_starts_at_entry () =
  let f = func_of_shape nested_loops in
  let cfg = Cfg.build f in
  let rpo = Cfg.rev_postorder cfg in
  Alcotest.(check int) "entry first" 0 rpo.(0);
  Alcotest.(check int) "all blocks" 6 (Array.length rpo)

let check_dominators_against_naive shape =
  let f = func_of_shape shape in
  let cfg = Cfg.build f in
  let dom = Dom.build cfg in
  let n = Array.length shape in
  for d = 0 to n - 1 do
    for b = 0 to n - 1 do
      if cfg.Cfg.reachable.(d) && cfg.Cfg.reachable.(b) then
        Alcotest.(check bool)
          (Printf.sprintf "dom %d %d" d b)
          (naive_dominates shape d b) (Dom.dominates dom d b)
    done
  done

let test_dom_diamond () = check_dominators_against_naive diamond
let test_dom_loop () = check_dominators_against_naive loop_shape
let test_dom_nested () = check_dominators_against_naive nested_loops

(* random CFGs vs the naive definition *)
let gen_shape : int list array QCheck.Gen.t =
  let open QCheck.Gen in
  let* n = int_range 2 10 in
  let* seed = int_range 0 1_000_000 in
  return
    (let rng = Mi_support.Rng.create seed in
     Array.init n (fun _ ->
         match Mi_support.Rng.int rng 4 with
         | 0 -> []
         | 1 -> [ Mi_support.Rng.int rng n ]
         | _ ->
             let a = Mi_support.Rng.int rng n in
             let b = Mi_support.Rng.int rng n in
             if a = b then [ a ] else [ a; b ]))

let prop_dom_matches_naive =
  QCheck.Test.make ~name:"dominators match naive definition (random CFGs)"
    ~count:300
    (QCheck.make gen_shape)
    (fun shape ->
      let f = func_of_shape shape in
      let cfg = Cfg.build f in
      let dom = Dom.build cfg in
      let n = Array.length shape in
      let ok = ref true in
      for d = 0 to n - 1 do
        for b = 0 to n - 1 do
          if cfg.Cfg.reachable.(d) && cfg.Cfg.reachable.(b) then
            if naive_dominates shape d b <> Dom.dominates dom d b then
              ok := false
        done
      done;
      !ok)

let test_frontiers_diamond () =
  let f = func_of_shape diamond in
  let cfg = Cfg.build f in
  let dom = Dom.build cfg in
  let df = Dom.frontiers dom in
  Alcotest.(check (list int)) "df of 1 is join" [ 3 ] df.(1);
  Alcotest.(check (list int)) "df of 2 is join" [ 3 ] df.(2);
  Alcotest.(check (list int)) "df of 0 empty" [] df.(0)

let test_loops_simple () =
  let f = func_of_shape loop_shape in
  let cfg = Cfg.build f in
  let dom = Dom.build cfg in
  let loops = Loops.build cfg dom in
  Alcotest.(check int) "one loop" 1 (List.length loops.Loops.loops);
  let l = List.hd loops.Loops.loops in
  Alcotest.(check int) "header" 1 l.Loops.header;
  Alcotest.(check (list int)) "body" [ 1; 2 ] l.Loops.body;
  Alcotest.(check (list int)) "latches" [ 2 ] l.Loops.latches;
  Alcotest.(check (option int)) "preheader" (Some 0) (Loops.preheader cfg l)

let test_loops_nested () =
  let f = func_of_shape nested_loops in
  let cfg = Cfg.build f in
  let dom = Dom.build cfg in
  let loops = Loops.build cfg dom in
  Alcotest.(check int) "two loops" 2 (List.length loops.Loops.loops);
  let outer = Option.get (Loops.find_loop loops 1) in
  let inner = Option.get (Loops.find_loop loops 2) in
  Alcotest.(check int) "outer depth" 1 outer.Loops.depth;
  Alcotest.(check int) "inner depth" 2 inner.Loops.depth;
  Alcotest.(check (option int)) "inner parent" (Some 1) inner.Loops.parent;
  Alcotest.(check (option int)) "innermost of 3" (Some 2)
    (Loops.innermost_header loops 3)

(* ------------------------------------------------------------------ *)
(* Domcheck                                                            *)
(* ------------------------------------------------------------------ *)

let test_domcheck_accepts () =
  let m =
    Parser.parse_module
      {|
module "ok"
func @f(%c.0 : i1) -> i64 {
entry:
  %x.1 = add i64 1:i64, 2:i64
  cbr %c.0, a, b
a:
  %y.2 = add i64 %x.1, 1:i64
  br join
b:
  %z.3 = add i64 %x.1, 2:i64
  br join
join:
  %w.4 = phi i64 [a %y.2] [b %z.3]
  ret %w.4
}
|}
  in
  Alcotest.(check (list string)) "accepted" [] (Mi_analysis.Domcheck.check_module m)

let test_domcheck_rejects_sibling_use () =
  let m =
    Parser.parse_module
      {|
module "bad"
func @f(%c.0 : i1) -> i64 {
entry:
  cbr %c.0, a, b
a:
  %y.1 = add i64 1:i64, 1:i64
  br join
b:
  %z.2 = add i64 %y.1, 2:i64
  br join
join:
  %w.3 = phi i64 [a %y.1] [b %z.2]
  ret %w.3
}
|}
  in
  Alcotest.(check bool) "rejected" true
    (Mi_analysis.Domcheck.check_module m <> [])

let test_domcheck_rejects_use_before_def () =
  let m =
    Parser.parse_module
      {|
module "bad"
func @f() -> i64 {
entry:
  %a.1 = add i64 %b.2, 1:i64
  %b.2 = add i64 1:i64, 1:i64
  ret %a.1
}
|}
  in
  Alcotest.(check bool) "rejected" true
    (Mi_analysis.Domcheck.check_module m <> [])

let () =
  Alcotest.run "analysis"
    [
      ( "cfg",
        [
          Alcotest.test_case "diamond" `Quick test_cfg_diamond;
          Alcotest.test_case "unreachable block" `Quick test_cfg_unreachable;
          Alcotest.test_case "reverse postorder" `Quick test_rpo_starts_at_entry;
        ] );
      ( "dominators",
        [
          Alcotest.test_case "diamond" `Quick test_dom_diamond;
          Alcotest.test_case "loop" `Quick test_dom_loop;
          Alcotest.test_case "nested loops" `Quick test_dom_nested;
          Alcotest.test_case "frontiers" `Quick test_frontiers_diamond;
          QCheck_alcotest.to_alcotest prop_dom_matches_naive;
        ] );
      ( "loops",
        [
          Alcotest.test_case "simple loop" `Quick test_loops_simple;
          Alcotest.test_case "nested loops" `Quick test_loops_nested;
        ] );
      ( "domcheck",
        [
          Alcotest.test_case "accepts valid SSA" `Quick test_domcheck_accepts;
          Alcotest.test_case "rejects sibling use" `Quick
            test_domcheck_rejects_sibling_use;
          Alcotest.test_case "rejects use before def" `Quick
            test_domcheck_rejects_use_before_def;
        ] );
    ]
