(* Tests for the Low-Fat Pointers runtime: region geometry, base/size
   recovery, fallbacks, frame handling, and check semantics. *)

open Mi_vm
module LF = Mi_lowfat.Lowfat_rt
module Layout = Mi_vm.Layout

let setup () =
  let st = State.create () in
  Builtins.install st;
  let lf = LF.install st in
  (st, lf)

let test_region_geometry () =
  Alcotest.(check int) "min region" 1 Layout.min_region;
  Alcotest.(check int) "max region" 27 Layout.max_region;
  Alcotest.(check int) "smallest class" 16 (Layout.size_of_region Layout.min_region);
  Alcotest.(check int) "largest class" (1 lsl 30)
    (Layout.size_of_region Layout.max_region);
  Alcotest.(check bool) "heap not low-fat" false (Layout.is_low_fat Layout.heap_base);
  Alcotest.(check bool) "stack not low-fat" false (Layout.is_low_fat Layout.stack_top);
  Alcotest.(check bool) "globals not low-fat" false
    (Layout.is_low_fat Layout.globals_base)

let test_alloc_size_classes () =
  let st, _ = setup () in
  (* size s gets class >= s+1 (footnote 3 padding) *)
  List.iter
    (fun (req, cls) ->
      let a = st.State.malloc_hook st req in
      Alcotest.(check bool) (Printf.sprintf "%d is low-fat" req) true
        (Layout.is_low_fat a);
      Alcotest.(check (option int))
        (Printf.sprintf "class of %d" req)
        (Some cls) (LF.alloc_size a))
    [ (1, 16); (15, 16); (16, 32); (31, 32); (100, 128); (1000, 1024) ]

let prop_base_recovery =
  QCheck.Test.make ~name:"base recoverable from any interior pointer"
    ~count:300
    QCheck.(pair (int_range 1 100000) (int_range 0 10000))
    (fun (size, off) ->
      let st, _ = setup () in
      let a = st.State.malloc_hook st size in
      let off = off mod size in
      LF.base (a + off) = a)

let test_one_past_end_in_class () =
  let st, _ = setup () in
  (* one-past-the-end stays within the padded class (footnote 3) *)
  let a = st.State.malloc_hook st 16 in
  Alcotest.(check int) "base of one-past-end" a (LF.base (a + 16))

let test_huge_alloc_falls_back () =
  let st, _ = setup () in
  let a = st.State.malloc_hook st (1 lsl 30 + 5) in
  Alcotest.(check bool) "not low-fat" false (Layout.is_low_fat a);
  Alcotest.(check int) "fallback counter" 1 (State.counter st "lf.fallback_large")

let test_free_and_reuse () =
  let st, t = setup () in
  let a = st.State.malloc_hook st 100 in
  LF.lf_free t st a;
  let b = st.State.malloc_hook st 100 in
  Alcotest.(check int) "reuses the freed slot" a b

let test_free_interior_traps () =
  let st, t = setup () in
  let a = st.State.malloc_hook st 100 in
  Alcotest.check_raises "interior free" (State.Trap "free of interior low-fat pointer")
    (fun () -> LF.lf_free t st (a + 8))

let test_nonfat_free_goes_to_std () =
  let st, t = setup () in
  let a = State.std_malloc st 64 in
  LF.lf_free t st a;
  Alcotest.(check int) "std free happened" 1 (State.counter st "std.free")

let violation f =
  match f () with
  | exception State.Safety_abort { checker = "lowfat"; _ } -> true
  | () -> false

let test_check_semantics () =
  let st, _ = setup () in
  let a = st.State.malloc_hook st 24 in
  (* class of 24 is 32 *)
  Alcotest.(check bool) "in bounds ok" false (violation (fun () -> LF.check st a 8 a));
  Alcotest.(check bool) "last byte ok" false
    (violation (fun () -> LF.check st (a + 31) 1 a));
  Alcotest.(check bool) "padding access not detected" false
    (violation (fun () -> LF.check st (a + 24) 8 a));
  Alcotest.(check bool) "past class detected" true
    (violation (fun () -> LF.check st (a + 32) 1 a));
  Alcotest.(check bool) "underflow detected" true
    (violation (fun () -> LF.check st (a - 1) 1 a));
  Alcotest.(check bool) "width crossing end detected" true
    (violation (fun () -> LF.check st (a + 28) 8 a))

let test_check_wide_for_nonfat () =
  let st, _ = setup () in
  let a = State.std_malloc st 8 in
  Alcotest.(check bool) "non-low-fat is wide (no report)" false
    (violation (fun () -> LF.check st (a + 1000000) 8 a));
  Alcotest.(check int) "counted as wide" 1 (State.counter st "lf.checks_wide")

let test_invariant_check () =
  let st, _ = setup () in
  let a = st.State.malloc_hook st 24 in
  Alcotest.(check bool) "in-bounds pointer may escape" false
    (violation (fun () -> LF.invariant_check st (a + 8) a));
  Alcotest.(check bool) "oob pointer escape detected" true
    (violation (fun () -> LF.invariant_check st (a + 40) a))

let test_frame_cleanup () =
  let st, _t = setup () in
  (* simulate an lf_alloca inside a frame *)
  st.State.frame_enter_hook st;
  let fn = Option.get (State.find_builtin st Mi_mir.Intrinsics.lf_alloca) in
  let a = State.as_int (Option.get (fn st [| State.I 40 |])) in
  Alcotest.(check bool) "mirrored to low-fat" true (Layout.is_low_fat a);
  st.State.frame_exit_hook st;
  (* the slot is free again: a fresh allocation of the same class reuses it *)
  let b = st.State.malloc_hook st 40 in
  Alcotest.(check int) "freed on frame exit" a b

let test_region_exhaustion_fallback () =
  (* drain a region by allocating with a tiny region span: simulate by
     allocating many large chunks of the biggest class *)
  let st, t = setup () in
  ignore t;
  (* the 1 GiB class region spans 2^32 bytes, i.e. room for 4 objects *)
  let seen_fallback = ref false in
  for _ = 1 to 5 do
    let a = st.State.malloc_hook st ((1 lsl 29) + 8) in
    if not (Layout.is_low_fat a) then seen_fallback := true
  done;
  Alcotest.(check bool) "region exhaustion falls back" true !seen_fallback;
  Alcotest.(check bool) "counter" true
    (State.counter st "lf.fallback_exhausted" > 0)

let () =
  Alcotest.run "lowfat"
    [
      ( "geometry",
        [
          Alcotest.test_case "regions" `Quick test_region_geometry;
          Alcotest.test_case "size classes" `Quick test_alloc_size_classes;
          QCheck_alcotest.to_alcotest prop_base_recovery;
          Alcotest.test_case "one past end" `Quick test_one_past_end_in_class;
        ] );
      ( "allocator",
        [
          Alcotest.test_case "huge falls back" `Quick test_huge_alloc_falls_back;
          Alcotest.test_case "free and reuse" `Quick test_free_and_reuse;
          Alcotest.test_case "interior free traps" `Quick test_free_interior_traps;
          Alcotest.test_case "non-fat free forwards" `Quick test_nonfat_free_goes_to_std;
          Alcotest.test_case "region exhaustion" `Quick test_region_exhaustion_fallback;
          Alcotest.test_case "frame cleanup" `Quick test_frame_cleanup;
        ] );
      ( "checks",
        [
          Alcotest.test_case "deref semantics" `Quick test_check_semantics;
          Alcotest.test_case "wide for non-fat" `Quick test_check_wide_for_nonfat;
          Alcotest.test_case "escape invariant" `Quick test_invariant_check;
        ] );
    ]
