test/test_vm.ml: Alcotest Builtins Char Int64 Interp Layout List Memory Mi_analysis Mi_mir Mi_vm Parser Printf QCheck QCheck_alcotest State String
