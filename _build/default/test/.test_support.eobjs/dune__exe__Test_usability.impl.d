test/test_usability.ml: Alcotest List Mi_bench_kit Mi_core Mi_passes Mi_vm Printf
