test/test_edit.ml: Alcotest Block Func Instr Irmod List Mi_analysis Mi_core Mi_mir Parser Printer String Ty Value
