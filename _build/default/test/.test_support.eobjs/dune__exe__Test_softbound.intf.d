test/test_softbound.mli:
