test/test_diagnose.ml: Alcotest List Mi_bench_kit Mi_core Mi_minic Printf
