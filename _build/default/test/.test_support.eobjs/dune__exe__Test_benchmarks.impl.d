test/test_benchmarks.ml: Alcotest Bench Experiments Harness Hashtbl List Mi_bench_kit Mi_core Mi_minic Mi_mir Paper_data Suite
