test/test_minic.ml: Alcotest List Mi_analysis Mi_minic Mi_passes Mi_vm
