test/test_safety_corpus.mli:
