test/test_mir.ml: Alcotest Builder Eval Instr Int32 Irmod List Mi_mir Mi_support Option Parser Printer QCheck QCheck_alcotest String Ty Value Verify
