test/test_analysis.ml: Alcotest Array Block Fun Func Instr List Mi_analysis Mi_mir Mi_support Option Parser Printf QCheck QCheck_alcotest Ty Value
