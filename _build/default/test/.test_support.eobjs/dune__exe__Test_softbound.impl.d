test/test_softbound.ml: Alcotest Builtins Layout Memory Mi_softbound Mi_vm Option QCheck QCheck_alcotest State
