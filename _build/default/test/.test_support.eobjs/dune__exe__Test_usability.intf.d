test/test_usability.mli:
