test/test_safety_corpus.ml: Alcotest List Mi_bench_kit Mi_core Mi_passes Mi_support Mi_vm Printf
