test/test_passes.ml: Alcotest Block Func Instr Irmod List Mi_analysis Mi_core Mi_lowfat Mi_minic Mi_mir Mi_passes Mi_softbound Mi_vm Option Parser Printf String
