test/test_support.ml: Alcotest Array Fun List Mi_support QCheck QCheck_alcotest Rng String Table Util
