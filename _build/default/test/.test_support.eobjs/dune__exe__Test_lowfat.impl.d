test/test_lowfat.ml: Alcotest Builtins List Mi_lowfat Mi_mir Mi_vm Option Printf QCheck QCheck_alcotest State
