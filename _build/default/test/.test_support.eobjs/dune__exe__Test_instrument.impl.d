test/test_instrument.ml: Alcotest Block Func Instr Intrinsics Irmod List Mi_analysis Mi_bench_kit Mi_core Mi_mir Mi_vm Parser Printer String
