test/test_lowfat.mli:
