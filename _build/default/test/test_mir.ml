(* Tests for the MIR: types, evaluation semantics, printer/parser round
   trips, and the verifier. *)

open Mi_mir

(* ------------------------------------------------------------------ *)
(* Types                                                               *)
(* ------------------------------------------------------------------ *)

let test_ty_sizes () =
  List.iter
    (fun (ty, sz) -> Alcotest.(check int) (Ty.to_string ty) sz (Ty.size_of ty))
    [ (Ty.I1, 1); (Ty.I8, 1); (Ty.I16, 2); (Ty.I32, 4); (Ty.I64, 8); (Ty.F64, 8); (Ty.Ptr, 8) ]

let test_ty_strings () =
  List.iter
    (fun ty ->
      Alcotest.(check (option string))
        "roundtrip" (Some (Ty.to_string ty))
        (Option.map Ty.to_string (Ty.of_string (Ty.to_string ty))))
    [ Ty.I1; Ty.I8; Ty.I16; Ty.I32; Ty.I64; Ty.F64; Ty.Ptr ];
  Alcotest.(check bool) "bad type" true (Ty.of_string "i128" = None)

(* ------------------------------------------------------------------ *)
(* Eval semantics                                                      *)
(* ------------------------------------------------------------------ *)

(* i32 arithmetic must agree exactly with OCaml's Int32. *)
let prop_i32_agrees_with_int32 =
  let ops =
    [
      (Instr.Add, Int32.add); (Instr.Sub, Int32.sub); (Instr.Mul, Int32.mul);
      (Instr.And, Int32.logand); (Instr.Or, Int32.logor); (Instr.Xor, Int32.logxor);
    ]
  in
  QCheck.Test.make ~name:"i32 binops agree with Int32" ~count:2000
    QCheck.(triple (int_range 0 (List.length ops - 1)) int int)
    (fun (opi, a, b) ->
      let op, ref_op = List.nth ops opi in
      let a32 = Int32.of_int a and b32 = Int32.of_int b in
      let a' = Eval.normalize Ty.I32 a and b' = Eval.normalize Ty.I32 b in
      Eval.binop op Ty.I32 a' b' = Int32.to_int (ref_op a32 b32))

let prop_i32_div_agrees =
  QCheck.Test.make ~name:"i32 sdiv/srem agree with Int32" ~count:1000
    QCheck.(pair int (int_range 1 10000))
    (fun (a, b) ->
      let a' = Eval.normalize Ty.I32 a in
      Eval.binop Instr.SDiv Ty.I32 a' b
      = Int32.to_int (Int32.div (Int32.of_int a') (Int32.of_int b))
      && Eval.binop Instr.SRem Ty.I32 a' b
         = Int32.to_int (Int32.rem (Int32.of_int a') (Int32.of_int b)))

let prop_normalize_idempotent =
  QCheck.Test.make ~name:"normalize idempotent" ~count:1000
    QCheck.(pair (int_range 0 3) int)
    (fun (tyi, x) ->
      let ty = List.nth [ Ty.I1; Ty.I8; Ty.I16; Ty.I32 ] tyi in
      let n = Eval.normalize ty x in
      Eval.normalize ty n = n)

let test_div_by_zero () =
  Alcotest.check_raises "sdiv 0" Eval.Div_by_zero (fun () ->
      ignore (Eval.binop Instr.SDiv Ty.I64 5 0));
  Alcotest.check_raises "urem 0" Eval.Div_by_zero (fun () ->
      ignore (Eval.binop Instr.URem Ty.I32 5 0))

let test_unsigned_compare () =
  (* -1 as unsigned is the largest value *)
  Alcotest.(check int) "ult -1 0 (i64)" 0 (Eval.icmp Instr.Ult Ty.I64 (-1) 0);
  Alcotest.(check int) "ugt -1 0 (i64)" 1 (Eval.icmp Instr.Ugt Ty.I64 (-1) 0);
  Alcotest.(check int) "ult i8 -1 1" 0 (Eval.icmp Instr.Ult Ty.I8 (-1) 1);
  Alcotest.(check int) "slt i8 -1 1" 1 (Eval.icmp Instr.Slt Ty.I8 (-1) 1)

let test_casts () =
  Alcotest.(check int) "zext i8 -1 -> i32" 255
    (Eval.cast_int Instr.Zext Ty.I8 Ty.I32 (-1));
  Alcotest.(check int) "sext i8 -1 -> i32" (-1)
    (Eval.cast_int Instr.Sext Ty.I8 Ty.I32 (-1));
  Alcotest.(check int) "trunc i32 257 -> i8" 1
    (Eval.cast_int Instr.Trunc Ty.I32 Ty.I8 257);
  Alcotest.(check int) "trunc i32 128 -> i8 is negative" (-128)
    (Eval.cast_int Instr.Trunc Ty.I32 Ty.I8 128)

let test_shifts () =
  Alcotest.(check int) "shl i32 wraps" Int32.(to_int (shift_left 1l 31))
    (Eval.binop Instr.Shl Ty.I32 1 31);
  Alcotest.(check int) "lshr i8 of -1" 127 (Eval.binop Instr.LShr Ty.I8 (-1) 1);
  Alcotest.(check int) "ashr i8 of -2" (-1) (Eval.binop Instr.AShr Ty.I8 (-2) 1)

(* ------------------------------------------------------------------ *)
(* Printer / parser round trip                                          *)
(* ------------------------------------------------------------------ *)

let kitchen_sink =
  {|
module "sink"

global @bytes : 12 align 4 {
  bytes "ab\x00\xff\"\\"
  zero 4
  bytes "xy"
}
global @withptr : 16 align 8 {
  ptr @bytes
  zero 8
}
extern global @ext : 100 align 8
extern global @szless : 0 align 8 nosize

extern func @ext_fn(%a.0 : i64, %p.1 : ptr) -> ptr

func @kitchen(%x.0 : i64, %f.1 : f64, %p.2 : ptr) -> i64 {
entry:
  %a.3 = add i64 %x.0, 5:i64
  %b.4 = mul i32 7:i32, -3:i32
  %c.5 = fadd %f.1, fl(0x1.8p+1)
  %d.6 = icmp ult i64 %a.3, 100:i64
  %e.7 = fcmp fge %c.5, fl(0x0p+0)
  %g.8 = zext i32 %b.4 to i64
  %h.9 = sext i8 -1:i8 to i16
  %i.10 = trunc i64 %a.3 to i32
  %j.11 = inttoptr i64 %a.3 to ptr
  %k.12 = ptrtoint ptr %j.11 to i64
  %l.13 = sitofp i64 %a.3 to f64
  %m.14 = fptosi f64 %l.13 to i64
  %bc.15 = bitcast i64 %k.12 to f64
  %n.16 = gep %p.2 [8 x %a.3] [1 x 4:i64]
  %o.17 = load i64 %n.16
  store i32 %i.10, %p.2
  %q.18 = select i64 %d.6, %a.3, %o.17
  %r.19 = call @ext_fn(%q.18, @withptr) : ptr
  call @print_int(%q.18)
  memcpy %p.2, %r.19, 16:i64
  memset %p.2, 0:i32, 8:i64
  %s.20 = alloca 24 align 8
  cbr %d.6, loop, done
loop:
  %phi.21 = phi i64 [entry %a.3] [loop %t.22]
  %t.22 = sub i64 %phi.21, 1:i64
  %u.23 = icmp sgt i64 %t.22, 0:i64
  cbr %u.23, loop, done
done:
  %v.24 = phi i64 [entry 0:i64] [loop %t.22]
  ret %v.24
}

func @noret() -> void {
entry:
  unreachable
}
|}

let roundtrip_ok src =
  let m1 = Parser.parse_module src in
  let s1 = Printer.module_to_string m1 in
  let m2 = Parser.parse_module s1 in
  let s2 = Printer.module_to_string m2 in
  Alcotest.(check string) "print-parse-print fixpoint" s1 s2

let test_roundtrip_kitchen_sink () = roundtrip_ok kitchen_sink

let test_parse_error_reports_line () =
  match Parser.parse_module_res "module \"x\"\nbogus top-level" with
  | Error msg ->
      Alcotest.(check bool) "mentions line" true
        (String.length msg > 0
        && String.sub msg 0 5 = "line ")
  | Ok _ -> Alcotest.fail "expected parse error"

(* random straight-line functions for the round-trip property *)
let gen_module : Irmod.t QCheck.Gen.t =
  let open QCheck.Gen in
  let* n_instrs = int_range 1 25 in
  let* seed = int_range 0 1_000_000 in
  return
    (let rng = Mi_support.Rng.create seed in
     let b =
       Builder.create ~name:"f"
         ~params:
           [
             { Value.vid = 0; vname = "x"; vty = Ty.I64 };
             { Value.vid = 1; vname = "p"; vty = Ty.Ptr };
           ]
         ~ret_ty:(Some Ty.I64)
     in
     Builder.start_block b "entry";
     let ints = ref [ Value.Var { Value.vid = 0; vname = "x"; vty = Ty.I64 } ] in
     let ptrs = ref [ Value.Var { Value.vid = 1; vname = "p"; vty = Ty.Ptr } ] in
     let pick l = List.nth l (Mi_support.Rng.int rng (List.length l)) in
     for _ = 1 to n_instrs do
       match Mi_support.Rng.int rng 6 with
       | 0 ->
           let op =
             pick [ Instr.Add; Instr.Sub; Instr.Mul; Instr.And; Instr.Xor; Instr.Shl ]
           in
           ints :=
             Builder.binop b op Ty.I64 (pick !ints)
               (Value.i64 (Mi_support.Rng.int rng 100))
             :: !ints
       | 1 -> ints := Builder.load b Ty.I64 (pick !ptrs) :: !ints
       | 2 -> Builder.store b Ty.I64 (pick !ints) (pick !ptrs)
       | 3 ->
           ptrs :=
             Builder.gep b (pick !ptrs)
               [ { stride = 8; idx = pick !ints } ]
             :: !ptrs
       | 4 ->
           ints :=
             Builder.call_val b Ty.I64 "mi_rand" [] :: !ints
       | _ ->
           let c = Builder.icmp b Instr.Slt Ty.I64 (pick !ints) (Value.i64 7) in
           ints := Builder.select b Ty.I64 c (pick !ints) (pick !ints) :: !ints
     done;
     Builder.ret b (Some (pick !ints));
     let f = Builder.finish b in
     let m = Irmod.mk "rand" in
     Irmod.add_func m f;
     m)

let prop_roundtrip_random =
  QCheck.Test.make ~name:"printer/parser round trip (random modules)"
    ~count:200
    (QCheck.make gen_module)
    (fun m ->
      let s1 = Printer.module_to_string m in
      let m2 = Parser.parse_module s1 in
      Printer.module_to_string m2 = s1)

let prop_random_modules_verify =
  QCheck.Test.make ~name:"random modules verify" ~count:200
    (QCheck.make gen_module)
    (fun m -> Verify.verify_module m = [])

(* ------------------------------------------------------------------ *)
(* Verifier                                                            *)
(* ------------------------------------------------------------------ *)

let expect_invalid ~reason src =
  let m = Parser.parse_module src in
  match Verify.verify_module m with
  | [] -> Alcotest.fail ("verifier accepted: " ^ reason)
  | _ -> ()

let test_verify_bad_operand_type () =
  expect_invalid ~reason:"float into add"
    {|
module "bad"
func @f(%x.0 : f64) -> void {
entry:
  %y.1 = add i64 %x.0, 1:i64
  ret
}
|}

let test_verify_duplicate_def () =
  expect_invalid ~reason:"duplicate definition"
    {|
module "bad"
func @f() -> void {
entry:
  %y.1 = add i64 1:i64, 1:i64
  %y.1 = add i64 2:i64, 2:i64
  ret
}
|}

let test_verify_unknown_label () =
  expect_invalid ~reason:"branch to unknown label"
    {|
module "bad"
func @f() -> void {
entry:
  br nowhere
}
|}

let test_verify_phi_pred_mismatch () =
  expect_invalid ~reason:"phi with wrong predecessors"
    {|
module "bad"
func @f() -> i64 {
entry:
  br next
next:
  %x.1 = phi i64 [entry 1:i64] [bogus 2:i64]
  ret %x.1
bogus:
  ret 0:i64
}
|}

let test_verify_entry_phi () =
  expect_invalid ~reason:"phi in entry block"
    {|
module "bad"
func @f() -> i64 {
entry:
  %x.1 = phi i64
  ret %x.1
}
|}

let test_verify_ret_mismatch () =
  expect_invalid ~reason:"void return from i64 function"
    {|
module "bad"
func @f() -> i64 {
entry:
  ret
}
|}

let test_verify_accepts_kitchen_sink () =
  let m = Parser.parse_module kitchen_sink in
  Alcotest.(check int) "no errors" 0 (List.length (Verify.verify_module m))

(* ------------------------------------------------------------------ *)
(* Instruction utilities                                               *)
(* ------------------------------------------------------------------ *)

let test_operands_and_map () =
  let v1 = Value.i64 1 and v2 = Value.i64 2 in
  let i = Instr.mk (Instr.Store (Ty.I64, v1, v2)) in
  Alcotest.(check int) "store has two operands" 2 (List.length (Instr.operands i));
  let doubled =
    Instr.map_operands
      (fun v -> match v with Value.Int (ty, k) -> Value.Int (ty, 2 * k) | v -> v)
      i
  in
  (match doubled.op with
  | Instr.Store (_, Value.Int (_, 2), Value.Int (_, 4)) -> ()
  | _ -> Alcotest.fail "map_operands did not rewrite");
  Alcotest.(check (list string)) "successors of cbr" [ "a"; "b" ]
    (Instr.successors (Instr.Cbr (Value.i1 true, "a", "b")));
  Alcotest.(check (list string)) "identical cbr targets dedup" [ "a" ]
    (Instr.successors (Instr.Cbr (Value.i1 true, "a", "a")))

let () =
  Alcotest.run "mir"
    [
      ( "ty",
        [
          Alcotest.test_case "sizes" `Quick test_ty_sizes;
          Alcotest.test_case "to/of string" `Quick test_ty_strings;
        ] );
      ( "eval",
        [
          QCheck_alcotest.to_alcotest prop_i32_agrees_with_int32;
          QCheck_alcotest.to_alcotest prop_i32_div_agrees;
          QCheck_alcotest.to_alcotest prop_normalize_idempotent;
          Alcotest.test_case "division by zero" `Quick test_div_by_zero;
          Alcotest.test_case "unsigned compares" `Quick test_unsigned_compare;
          Alcotest.test_case "casts" `Quick test_casts;
          Alcotest.test_case "shifts" `Quick test_shifts;
        ] );
      ( "roundtrip",
        [
          Alcotest.test_case "kitchen sink" `Quick test_roundtrip_kitchen_sink;
          Alcotest.test_case "parse errors carry lines" `Quick
            test_parse_error_reports_line;
          QCheck_alcotest.to_alcotest prop_roundtrip_random;
          QCheck_alcotest.to_alcotest prop_random_modules_verify;
        ] );
      ( "verify",
        [
          Alcotest.test_case "bad operand type" `Quick test_verify_bad_operand_type;
          Alcotest.test_case "duplicate def" `Quick test_verify_duplicate_def;
          Alcotest.test_case "unknown label" `Quick test_verify_unknown_label;
          Alcotest.test_case "phi pred mismatch" `Quick test_verify_phi_pred_mismatch;
          Alcotest.test_case "entry phi" `Quick test_verify_entry_phi;
          Alcotest.test_case "ret mismatch" `Quick test_verify_ret_mismatch;
          Alcotest.test_case "accepts kitchen sink" `Quick
            test_verify_accepts_kitchen_sink;
        ] );
      ( "instr",
        [ Alcotest.test_case "operands/map/successors" `Quick test_operands_and_map ] );
    ]
