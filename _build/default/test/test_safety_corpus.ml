(* The artifact-style safety corpus (appendix A.5): a few hundred small
   programs with heap, stack, and global out-of-bounds reads and writes,
   each validated against the expected verdict of both instrumentations.

   Expected verdicts follow the approaches' documented guarantees:
   - SoftBound keeps exact allocation bounds: every spatial violation in
     an instrumented access is reported;
   - Low-Fat pads allocations to their power-of-two size class (+1 byte
     for one-past-the-end), so accesses into the padding are *not*
     reported, while accesses beyond the class or before the base are. *)

module Config = Mi_core.Config
module Harness = Mi_bench_kit.Harness
module Bench = Mi_bench_kit.Bench

type region = Heap | Stack | Global
type elem = Char | Long
type access = Read | Write

type kind =
  | In_bounds
  | Last_elem
  | Just_past  (** first element past the object *)
  | Past_class  (** beyond the low-fat size class *)
  | Underflow_one
  | Underflow_far
  | Cross_end_width  (** 8-byte access straddling the exact bound *)

let region_name = function Heap -> "heap" | Stack -> "stack" | Global -> "global"
let elem_name = function Char -> "char" | Long -> "long"
let access_name = function Read -> "read" | Write -> "write"

let kind_name = function
  | In_bounds -> "in_bounds"
  | Last_elem -> "last_elem"
  | Just_past -> "just_past"
  | Past_class -> "past_class"
  | Underflow_one -> "underflow1"
  | Underflow_far -> "underflow_far"
  | Cross_end_width -> "cross_end_width"

(* array extents chosen so that "just past" lands in low-fat padding *)
let n_elems = function Char -> 20 | Long -> 10
let elem_size = function Char -> 1 | Long -> 8

let index_of_kind elem = function
  | In_bounds -> 1
  | Last_elem -> n_elems elem - 1
  | Just_past -> n_elems elem
  | Past_class -> (
      (* object size: char 20 -> class 32; long 80 -> class 128 *)
      match elem with Char -> 40 | Long -> 17)
  | Underflow_one -> -1
  | Underflow_far -> -50
  | Cross_end_width -> n_elems elem (* only used with the i64 overlay *)

(* geometry oracle mirroring the runtime *)
let lf_detects elem kind =
  let size = n_elems elem * elem_size elem in
  let cls = Mi_support.Util.round_up_pow2 (size + 1) in
  match kind with
  | Cross_end_width ->
      (* 8-byte access at byte offset (size - 1) *)
      let off = size - 1 in
      off + 8 > cls
  | k ->
      let off = index_of_kind elem k * elem_size elem in
      let width = elem_size elem in
      off < 0 || off + width > cls

let sb_detects kind =
  match kind with
  | In_bounds | Last_elem -> false
  | _ -> true

let program region elem access kind : string =
  let n = n_elems elem in
  let ty = elem_name elem in
  let decl, init_arr =
    match region with
    | Heap ->
        ( Printf.sprintf "  %s *a = (%s *)malloc(%d * sizeof(%s));" ty ty n ty,
          "" )
    | Stack -> (Printf.sprintf "  %s a[%d];" ty n, "")
    | Global -> ("  /* global */", "")
  in
  let global_decl =
    match region with
    | Global -> Printf.sprintf "%s a[%d];\n" ty n
    | _ -> ""
  in
  let body =
    match kind with
    | Cross_end_width ->
        (* overlay an 8-byte access on the last byte of the object *)
        let off = (n * elem_size elem) - 1 in
        let acc =
          match access with
          | Read -> Printf.sprintf "  print_int(*(long *)((char *)a + %d));" off
          | Write -> Printf.sprintf "  *(long *)((char *)a + %d) = 7;" off
        in
        acc
    | k -> (
        let idx = index_of_kind elem k in
        match access with
        | Read -> Printf.sprintf "  print_int(a[%d]);" idx
        | Write -> Printf.sprintf "  a[%d] = 7;" idx)
  in
  Printf.sprintf
    {|%s
int main(void) {
%s
%s
  long i;
  for (i = 0; i < %d; i++) a[i] = (%s)i;
%s
  print_int(a[0]);
  return 0;
}
|}
    global_decl decl init_arr n ty body

let run_with approach src =
  let cfg = Config.of_approach approach in
  let setup =
    {
      (Harness.with_config cfg Harness.baseline) with
      level = Mi_passes.Pipeline.O1;
    }
  in
  let r = Harness.run_sources setup [ Bench.src "t" src ] in
  match r.Harness.outcome with
  | Mi_vm.Interp.Exited _ -> false
  | Mi_vm.Interp.Safety_violation _ -> true
  | Mi_vm.Interp.Trapped msg -> Alcotest.fail ("VM trap: " ^ msg)

let case region elem access kind approach =
  let name =
    Printf.sprintf "%s_%s_%s_%s_%s" (region_name region) (elem_name elem)
      (access_name access) (kind_name kind)
      (Config.approach_name approach)
  in
  Alcotest.test_case name `Slow (fun () ->
      let src = program region elem access kind in
      let expected =
        match approach with
        | Config.Softbound -> sb_detects kind
        | Config.Lowfat -> lf_detects elem kind
      in
      let got = run_with approach src in
      if got <> expected then
        Alcotest.failf "%s: expected %s, got %s\n%s" name
          (if expected then "violation" else "clean run")
          (if got then "violation" else "clean run")
          src)

let corpus =
  List.concat_map
    (fun region ->
      List.concat_map
        (fun elem ->
          List.concat_map
            (fun access ->
              List.concat_map
                (fun kind ->
                  List.map
                    (fun approach -> case region elem access kind approach)
                    [ Config.Softbound; Config.Lowfat ])
                [
                  In_bounds; Last_elem; Just_past; Past_class; Underflow_one;
                  Underflow_far; Cross_end_width;
                ])
            [ Read; Write ])
        [ Char; Long ])
    [ Heap; Stack; Global ]

(* a few structurally different benign programs that must pass both *)
let benign_extras =
  [
    ( "one_past_end_pointer_not_deref",
      {|
int main(void) {
  long *a = (long *)malloc(4 * sizeof(long));
  long *end = a + 4;       /* one past the end: allowed by C */
  long *p = a;
  long s = 0;
  while (p < end) { s += *p; p++; }
  print_int(s);
  return 0;
}
|} );
    ( "memcpy_in_bounds",
      {|
int main(void) {
  char *src = (char *)malloc(32);
  char *dst = (char *)malloc(32);
  long i;
  for (i = 0; i < 32; i++) src[i] = (char)(i + 1);
  memcpy(dst, src, 32);
  print_int(dst[31]);
  return 0;
}
|} );
    ( "nested_struct_access",
      {|
struct in { long a[4]; };
struct out { struct in x; struct in y; };
int main(void) {
  struct out o;
  o.x.a[3] = 5;
  o.y.a[0] = 6;
  print_int(o.x.a[3] + o.y.a[0]);
  return 0;
}
|} );
    ( "free_then_fresh",
      {|
int main(void) {
  long *a = (long *)malloc(16 * sizeof(long));
  a[15] = 3;
  free(a);
  long *b = (long *)malloc(16 * sizeof(long));
  b[15] = 4;
  print_int(b[15]);
  free(b);
  return 0;
}
|} );
    ( "pointer_in_struct_roundtrip",
      {|
struct box { long *p; };
int main(void) {
  struct box b;
  long v = 11;
  b.p = &v;
  print_int(*(b.p));
  return 0;
}
|} );
    ( "string_global_walk",
      {|
char text[] = "corpus";
int main(void) {
  long n = 0;
  char *p = text;
  while (*p) { n++; p++; }
  print_int(n);
  return 0;
}
|} );
  ]

let benign_cases =
  List.concat_map
    (fun (name, src) ->
      List.map
        (fun approach ->
          Alcotest.test_case
            (Printf.sprintf "%s_%s" name (Config.approach_name approach))
            `Slow
            (fun () ->
              if run_with approach src then
                Alcotest.failf "%s: spurious violation under %s" name
                  (Config.approach_name approach)))
        [ Config.Softbound; Config.Lowfat ])
    benign_extras

let () =
  Printf.printf "safety corpus: %d generated + %d benign cases\n%!"
    (List.length corpus) (List.length benign_cases);
  Alcotest.run "safety_corpus"
    [ ("generated", corpus); ("benign", benign_cases) ]
