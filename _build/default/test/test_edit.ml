(* Unit tests for the deferred-edit buffer the instrumenter builds on. *)

open Mi_mir
module Edit = Mi_core.Edit

let base_func () =
  let m =
    Parser.parse_module
      {|
module "t"
func @f(%x.0 : i64) -> i64 {
entry:
  %a.1 = add i64 %x.0, 1:i64
  %b.2 = add i64 %a.1, 2:i64
  br next
next:
  %c.3 = add i64 %b.2, 3:i64
  ret %c.3
}
|}
  in
  Irmod.find_func_exn m "f"

let body_ops (f : Func.t) label =
  List.map
    (fun (i : Instr.t) -> Printer.instr_to_string i)
    (Func.find_block_exn f label).Block.body

let nth_is f label n needle =
  let s = List.nth (body_ops f label) n in
  let nn = String.length needle and ns = String.length s in
  let rec go i = i + nn <= ns && (String.sub s i nn = needle || go (i + 1)) in
  go 0

let mk_marker k =
  Instr.mk (Instr.Call ("print_int", [ Value.i64 k ]))

let test_insert_positions () =
  let f = base_func () in
  let e = Edit.create f in
  Edit.insert_entry e (mk_marker 100);
  Edit.insert_before e { Edit.ablock = "entry"; apos = 1 } (mk_marker 200);
  Edit.insert_after e { Edit.ablock = "entry"; apos = 1 } (mk_marker 300);
  Edit.insert_at_end e "next" (mk_marker 400);
  Edit.apply e;
  (* entry: marker100, a, marker200, b, marker300 *)
  Alcotest.(check int) "entry grew" 5 (List.length (body_ops f "entry"));
  Alcotest.(check bool) "entry prepend first" true (nth_is f "entry" 0 "100");
  Alcotest.(check bool) "before lands before" true (nth_is f "entry" 2 "200");
  Alcotest.(check bool) "after lands after" true (nth_is f "entry" 4 "300");
  (* next: c, marker400, then ret *)
  Alcotest.(check bool) "at_end before terminator" true (nth_is f "next" 1 "400")

let test_insert_order_stable () =
  let f = base_func () in
  let e = Edit.create f in
  let a = { Edit.ablock = "entry"; apos = 0 } in
  Edit.insert_before e a (mk_marker 1);
  Edit.insert_before e a (mk_marker 2);
  Edit.insert_after e a (mk_marker 3);
  Edit.insert_after e a (mk_marker 4);
  Edit.apply e;
  (* insertion order is preserved: 1, 2, original, 3, 4 *)
  Alcotest.(check bool) "first before" true (nth_is f "entry" 0 "(1:i64)");
  Alcotest.(check bool) "second before" true (nth_is f "entry" 1 "(2:i64)");
  Alcotest.(check bool) "first after" true (nth_is f "entry" 3 "(3:i64)");
  Alcotest.(check bool) "second after" true (nth_is f "entry" 4 "(4:i64)")

let test_replacement () =
  let f = base_func () in
  let e = Edit.create f in
  let a = { Edit.ablock = "next"; apos = 0 } in
  let d = { Value.vid = 3; vname = "c"; vty = Ty.I64 } in
  Edit.set_replacement e a
    (Instr.mk ~dst:d (Instr.Bin (Instr.Mul, Ty.I64, Value.i64 7, Value.i64 6)));
  Edit.apply e;
  Alcotest.(check bool) "replaced" true (nth_is f "next" 0 "mul");
  (* double replacement is rejected *)
  let f2 = base_func () in
  let e2 = Edit.create f2 in
  Edit.set_replacement e2 a (mk_marker 1);
  Alcotest.check_raises "second replacement rejected"
    (Invalid_argument "Edit.set_replacement: anchor already replaced")
    (fun () -> Edit.set_replacement e2 a (mk_marker 2))

let test_emit_helpers_and_fresh () =
  let f = base_func () in
  let before_ids = Func.all_defs f |> List.map (fun v -> v.Value.vid) in
  let e = Edit.create f in
  let v =
    Edit.emit_entry e ~name:"w" Ty.I64
      (Instr.Bin (Instr.Add, Ty.I64, Value.i64 1, Value.i64 2))
  in
  (match v with
  | Value.Var x ->
      Alcotest.(check bool) "fresh id unique" true
        (not (List.mem x.Value.vid before_ids))
  | _ -> Alcotest.fail "emit_entry should return a variable");
  Edit.apply e;
  Mi_analysis.Domcheck.assert_valid
    (let m = Irmod.mk "t" in
     Irmod.add_func m f;
     m)

let test_add_phi () =
  let m =
    Parser.parse_module
      {|
module "t"
func @f(%c.0 : i1) -> i64 {
entry:
  cbr %c.0, a, b
a:
  br join
b:
  br join
join:
  ret 0:i64
}
|}
  in
  let f = Irmod.find_func_exn m "f" in
  let e = Edit.create f in
  let dst = Edit.fresh e ~name:"p" Ty.I64 in
  Edit.add_phi e "join"
    { Instr.pdst = dst; incoming = [ ("a", Value.i64 1); ("b", Value.i64 2) ] };
  Edit.apply e;
  Mi_analysis.Domcheck.assert_valid m;
  Alcotest.(check int) "phi added" 1
    (List.length (Func.find_block_exn f "join").Block.phis)

let () =
  Alcotest.run "edit"
    [
      ( "edit",
        [
          Alcotest.test_case "insert positions" `Quick test_insert_positions;
          Alcotest.test_case "insertion order" `Quick test_insert_order_stable;
          Alcotest.test_case "replacement" `Quick test_replacement;
          Alcotest.test_case "emit helpers" `Quick test_emit_helpers_and_fresh;
          Alcotest.test_case "add phi" `Quick test_add_phi;
        ] );
    ]
