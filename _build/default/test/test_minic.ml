(* Tests for the MiniC frontend: lexer, parser, struct layout, and
   end-to-end lowering correctness against expected program outputs. *)

module C = Mi_minic.Ctypes
module Lexer = Mi_minic.Lexer

(* ------------------------------------------------------------------ *)
(* Lexer                                                               *)
(* ------------------------------------------------------------------ *)

let tok_strings src =
  List.filter_map
    (fun (l : Lexer.lexed) ->
      match l.tok with
      | Lexer.Tint v -> Some ("i:" ^ string_of_int v)
      | Lexer.Tfloat f -> Some ("f:" ^ string_of_float f)
      | Lexer.Tstr s -> Some ("s:" ^ s)
      | Lexer.Tident s -> Some ("id:" ^ s)
      | Lexer.Tkw s -> Some ("kw:" ^ s)
      | Lexer.Tpunct s -> Some ("p:" ^ s)
      | Lexer.Teof -> None)
    (Lexer.tokenize src)

let test_lexer_basic () =
  Alcotest.(check (list string)) "tokens"
    [ "kw:int"; "id:x"; "p:="; "i:42"; "p:;" ]
    (tok_strings "int x = 42;")

let test_lexer_literals () =
  Alcotest.(check (list string)) "hex, char, float, string"
    [ "i:255"; "i:97"; "f:1.5"; "s:a\nb" ]
    (tok_strings {|0xff 'a' 1.5 "a\nb"|})

let test_lexer_operators () =
  Alcotest.(check (list string)) "multi-char ops use longest match"
    [ "p:<<="; "p:->"; "p:++"; "p:<="; "p:<<" ]
    (tok_strings "<<= -> ++ <= <<")

let test_lexer_comments () =
  Alcotest.(check (list string)) "comments skipped" [ "i:1"; "i:2" ]
    (tok_strings "1 /* comment \n more */ 2 // trailing")

(* ------------------------------------------------------------------ *)
(* Struct layout                                                       *)
(* ------------------------------------------------------------------ *)

let test_struct_layout_padding () =
  let reg = C.create_registry () in
  let s =
    C.define_struct reg "mix" [ ("c", C.Cchar); ("l", C.Clong); ("s", C.Cshort) ]
  in
  let off name = (C.find_field reg "mix" name).C.fld_off in
  Alcotest.(check int) "char at 0" 0 (off "c");
  Alcotest.(check int) "long aligned to 8" 8 (off "l");
  Alcotest.(check int) "short at 16" 16 (off "s");
  Alcotest.(check int) "size rounded to align" 24 s.C.s_size;
  Alcotest.(check int) "align is 8" 8 s.C.s_align

let test_struct_nested () =
  let reg = C.create_registry () in
  ignore (C.define_struct reg "inner" [ ("a", C.Cint); ("b", C.Cint) ]);
  let s =
    C.define_struct reg "outer"
      [ ("x", C.Cchar); ("in", C.Cstruct "inner"); ("tail", C.Carr (C.Cshort, Some 3)) ]
  in
  Alcotest.(check int) "inner after char, aligned 4" 4
    (C.find_field reg "outer" "in").C.fld_off;
  Alcotest.(check int) "array after inner" 12
    (C.find_field reg "outer" "tail").C.fld_off;
  Alcotest.(check int) "outer size" 20 s.C.s_size

let test_array_sizes () =
  let reg = C.create_registry () in
  Alcotest.(check int) "int[10]" 40 (C.size_of reg (C.Carr (C.Cint, Some 10)));
  Alcotest.(check int) "int[3][4]" 48
    (C.size_of reg (C.Carr (C.Carr (C.Cint, Some 4), Some 3)))

(* ------------------------------------------------------------------ *)
(* End-to-end program outputs                                          *)
(* ------------------------------------------------------------------ *)

let run ?(level = Mi_passes.Pipeline.O0) src =
  let m = Mi_minic.Lower.compile src in
  Mi_passes.Pipeline.run ~level m;
  Mi_analysis.Domcheck.assert_valid m;
  let st = Mi_vm.State.create () in
  Mi_vm.Builtins.install st;
  let img = Mi_vm.Interp.load st [ m ] in
  Mi_vm.Interp.run st img

let check_output ?level name src expected =
  let r = run ?level src in
  (match r.Mi_vm.Interp.outcome with
  | Mi_vm.Interp.Exited _ -> ()
  | Mi_vm.Interp.Trapped m -> Alcotest.fail (name ^ ": trap " ^ m)
  | _ -> Alcotest.fail (name ^ ": violation"));
  Alcotest.(check string) name expected r.Mi_vm.Interp.output

(* programs are checked at O0 and O3: lowering and optimizations must
   agree *)
let check_both name src expected =
  check_output ~level:Mi_passes.Pipeline.O0 (name ^ " @O0") src expected;
  check_output ~level:Mi_passes.Pipeline.O3 (name ^ " @O3") src expected

let test_arith () =
  check_both "arith"
    {|
int main(void) {
  int a = 7, b = 3;
  print_int(a + b * 2);      putchar(32);
  print_int(a / b);          putchar(32);
  print_int(a % b);          putchar(32);
  print_int(-a);             putchar(32);
  print_int(a << 2);         putchar(32);
  print_int((a ^ b) & 5);    putchar(32);
  print_int(~0);
  return 0;
}
|}
    "13 2 1 -7 28 4 -1"

let test_char_overflow_semantics () =
  check_both "char wraps"
    {|
int main(void) {
  char c = 127;
  c = c + 1;
  print_int(c);
  return 0;
}
|}
    "-128"

let test_comparisons_and_logic () =
  check_both "logic"
    {|
int side_effects = 0;
int bump(int r) { side_effects = side_effects + 1; return r; }
int main(void) {
  print_int(3 < 4);  print_int(4 <= 3);  print_int(5 == 5);
  /* short circuit: bump must run exactly once */
  if (bump(0) && bump(1)) putchar(88);
  print_int(side_effects);
  if (bump(1) || bump(1)) putchar(89);
  print_int(side_effects);
  return 0;
}
|}
    "1011Y2"

let test_loops () =
  check_both "loops"
    {|
int main(void) {
  long s = 0;
  long i;
  for (i = 0; i < 10; i++) {
    if (i == 3) continue;
    if (i == 8) break;
    s += i;
  }
  print_int(s);
  putchar(32);
  long j = 0;
  while (j < 5) j++;
  print_int(j);
  putchar(32);
  long k = 10;
  do { k--; } while (k > 7);
  print_int(k);
  return 0;
}
|}
    "25 5 7"

let test_pointers_and_arrays () =
  check_both "pointers"
    {|
int main(void) {
  long arr[8];
  long i;
  for (i = 0; i < 8; i++) arr[i] = i * i;
  long *p = arr + 3;
  print_int(*p);        putchar(32);
  print_int(p[2]);      putchar(32);
  print_int(*(p - 1));  putchar(32);
  print_int((long)(p - arr)); putchar(32);
  long **pp = &p;
  print_int(**pp);
  return 0;
}
|}
    "9 25 4 3 9"

let test_structs () =
  check_both "structs"
    {|
struct point { long x; long y; };
struct rect { struct point lo; struct point hi; };

long area(struct rect *r) {
  return (r->hi.x - r->lo.x) * (r->hi.y - r->lo.y);
}

int main(void) {
  struct rect r;
  r.lo.x = 1; r.lo.y = 2;
  r.hi.x = 5; r.hi.y = 7;
  print_int(area(&r));
  putchar(32);
  struct rect copy;
  copy = r;            /* struct assignment via memcpy */
  copy.hi.x = 11;
  print_int(area(&copy));
  putchar(32);
  print_int(area(&r)); /* original unchanged */
  return 0;
}
|}
    "20 50 20"

let test_strings_and_globals () =
  check_both "globals"
    {|
char greeting[] = "hey";
int counts[5] = {10, 20, 30};
long total = 100;
struct pair { int a; int b; };
struct pair gp = {3, 4};
char *msg = "ptr-init";

int main(void) {
  print_str(greeting); putchar(32);
  print_int(counts[0] + counts[1] + counts[2] + counts[3]); putchar(32);
  print_int(total); putchar(32);
  print_int(gp.a * gp.b); putchar(32);
  print_str(msg); putchar(32);
  print_int((long)sizeof(greeting));
  return 0;
}
|}
    "hey 60 100 12 ptr-init 4"

let test_ternary_incdec () =
  check_both "ternary and inc/dec"
    {|
int main(void) {
  int x = 5;
  int y = x > 3 ? 10 : 20;
  print_int(y); putchar(32);
  print_int(x++); putchar(32);
  print_int(x);   putchar(32);
  print_int(--x); putchar(32);
  int arr[3] = {1, 2, 3};
  int *p = arr;
  print_int(*p++); putchar(32);
  print_int(*p);
  return 0;
}
|}
    "10 5 6 5 1 2"

let test_doubles () =
  check_both "doubles"
    {|
int main(void) {
  double a = 1.5;
  double b = a * 4.0 + 0.25;
  print_f64(b); putchar(32);
  print_int((int)b); putchar(32);
  double c = (double)7 / 2.0;
  print_f64(c); putchar(32);
  print_int(b > c);
  return 0;
}
|}
    "6.25 6 3.5 1"

let test_recursion_and_calls () =
  check_both "recursion"
    {|
long gcd(long a, long b) {
  if (b == 0) return a;
  return gcd(b, a % b);
}
long tri(long n) { return n <= 0 ? 0 : n + tri(n - 1); }
int main(void) {
  print_int(gcd(252, 105)); putchar(32);
  print_int(tri(10));
  return 0;
}
|}
    "21 55"

let test_libc_builtins () =
  check_both "libc"
    {|
int main(void) {
  char buf[32];
  strcpy(buf, "abc");
  strcat(buf, "def");
  print_int(strlen(buf)); putchar(32);
  print_int(strcmp(buf, "abcdef") == 0); putchar(32);
  char *found = strchr(buf, 'd');
  print_str(found); putchar(32);
  long *nums = (long *)calloc(4, sizeof(long));
  print_int(nums[3]); putchar(32);
  nums[0] = 5;
  nums = (long *)realloc(nums, 8 * sizeof(long));
  print_int(nums[0]); putchar(32);
  memset(buf, 'z', 3);
  buf[3] = 0;
  print_str(buf); putchar(32);
  print_int(abs(-9));
  free(nums);
  return 0;
}
|}
    "6 1 def 0 5 zzz 9"

let test_scoping_and_shadowing () =
  check_both "shadowing"
    {|
int x = 1;
int main(void) {
  print_int(x);
  int x = 2;
  print_int(x);
  {
    int x = 3;
    print_int(x);
  }
  print_int(x);
  return 0;
}
|}
    "1232"

let test_multidim_arrays () =
  check_both "multi-dim arrays"
    {|
int grid[3][4];
int main(void) {
  long i, j;
  for (i = 0; i < 3; i++) {
    for (j = 0; j < 4; j++) grid[i][j] = (int)(i * 4 + j);
  }
  print_int(grid[2][3]); putchar(32);
  print_int(grid[1][0]);
  return 0;
}
|}
    "11 4"

let test_sizeof_expr () =
  check_both "sizeof"
    {|
struct wide { long a; long b; long c; };
int main(void) {
  struct wide w;
  w.a = 1;
  print_int((long)sizeof(struct wide)); putchar(32);
  print_int((long)sizeof(w)); putchar(32);
  print_int((long)sizeof(long *)); putchar(32);
  print_int((long)sizeof(int));
  return 0;
}
|}
    "24 24 8 4"

let test_compile_errors () =
  let expect_error src =
    match Mi_minic.Lower.compile src with
    | exception Mi_minic.Lower.Compile_error _ -> ()
    | _ -> Alcotest.fail "expected compile error"
  in
  expect_error "int main(void) { return undeclared_var; }";
  expect_error "int main(void) { unknown_fn(); return 0; }";
  expect_error "int main(void) { int x = 1 return x; }";
  expect_error "struct s { int a; }; int main(void) { struct s v; return v.b; }";
  expect_error "int main(void) { break; return 0; }"

let () =
  Alcotest.run "minic"
    [
      ( "lexer",
        [
          Alcotest.test_case "basic" `Quick test_lexer_basic;
          Alcotest.test_case "literals" `Quick test_lexer_literals;
          Alcotest.test_case "operators" `Quick test_lexer_operators;
          Alcotest.test_case "comments" `Quick test_lexer_comments;
        ] );
      ( "layout",
        [
          Alcotest.test_case "padding" `Quick test_struct_layout_padding;
          Alcotest.test_case "nested" `Quick test_struct_nested;
          Alcotest.test_case "arrays" `Quick test_array_sizes;
        ] );
      ( "programs",
        [
          Alcotest.test_case "arithmetic" `Quick test_arith;
          Alcotest.test_case "char wrap" `Quick test_char_overflow_semantics;
          Alcotest.test_case "logic" `Quick test_comparisons_and_logic;
          Alcotest.test_case "loops" `Quick test_loops;
          Alcotest.test_case "pointers" `Quick test_pointers_and_arrays;
          Alcotest.test_case "structs" `Quick test_structs;
          Alcotest.test_case "globals" `Quick test_strings_and_globals;
          Alcotest.test_case "ternary inc/dec" `Quick test_ternary_incdec;
          Alcotest.test_case "doubles" `Quick test_doubles;
          Alcotest.test_case "recursion" `Quick test_recursion_and_calls;
          Alcotest.test_case "libc builtins" `Quick test_libc_builtins;
          Alcotest.test_case "shadowing" `Quick test_scoping_and_shadowing;
          Alcotest.test_case "multi-dim arrays" `Quick test_multidim_arrays;
          Alcotest.test_case "sizeof" `Quick test_sizeof_expr;
          Alcotest.test_case "compile errors" `Quick test_compile_errors;
        ] );
    ]
