(* Unit and property tests for Mi_support. *)

open Mi_support

let test_rng_deterministic () =
  let a = Rng.create 7 and b = Rng.create 7 in
  for _ = 1 to 100 do
    Alcotest.(check int) "same stream" (Rng.bits a) (Rng.bits b)
  done

let test_rng_copy () =
  let a = Rng.create 3 in
  ignore (Rng.bits a);
  let b = Rng.copy a in
  Alcotest.(check int) "copy continues identically" (Rng.bits a) (Rng.bits b)

let test_rng_seed_sensitivity () =
  let a = Rng.create 1 and b = Rng.create 2 in
  Alcotest.(check bool) "different seeds diverge" true
    (Rng.bits a <> Rng.bits b)

let prop_rng_int_range =
  QCheck.Test.make ~name:"Rng.int in range" ~count:500
    QCheck.(pair small_int (int_range 1 1000))
    (fun (seed, n) ->
      let r = Rng.create seed in
      let v = Rng.int r n in
      v >= 0 && v < n)

let prop_rng_int_range_incl =
  QCheck.Test.make ~name:"Rng.int_range inclusive" ~count:500
    QCheck.(triple small_int (int_range (-50) 50) (int_range 0 100))
    (fun (seed, lo, span) ->
      let r = Rng.create seed in
      let v = Rng.int_range r lo (lo + span) in
      v >= lo && v <= lo + span)

let test_rng_shuffle_permutation () =
  let r = Rng.create 11 in
  let arr = Array.init 50 Fun.id in
  Rng.shuffle r arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is a permutation" (Array.init 50 Fun.id) sorted

let test_pow2 () =
  Alcotest.(check int) "round_up 1" 1 (Util.round_up_pow2 1);
  Alcotest.(check int) "round_up 3" 4 (Util.round_up_pow2 3);
  Alcotest.(check int) "round_up 16" 16 (Util.round_up_pow2 16);
  Alcotest.(check int) "round_up 17" 32 (Util.round_up_pow2 17);
  Alcotest.(check bool) "is_pow2 64" true (Util.is_pow2 64);
  Alcotest.(check bool) "is_pow2 63" false (Util.is_pow2 63);
  Alcotest.(check bool) "is_pow2 0" false (Util.is_pow2 0);
  Alcotest.(check int) "log2 1024" 10 (Util.log2_exact 1024)

let prop_round_up_pow2 =
  QCheck.Test.make ~name:"round_up_pow2 bounds" ~count:500
    QCheck.(int_range 1 (1 lsl 20))
    (fun n ->
      let p = Util.round_up_pow2 n in
      Util.is_pow2 p && p >= n && p / 2 < n)

let test_align_up () =
  Alcotest.(check int) "align 13 to 8" 16 (Util.align_up 13 8);
  Alcotest.(check int) "align 16 to 8" 16 (Util.align_up 16 8);
  Alcotest.(check int) "align 0 to 4096" 0 (Util.align_up 0 4096)

let test_geomean_median () =
  Alcotest.(check (float 1e-9)) "geomean of [2;8]" 4.0 (Util.geomean [ 2.0; 8.0 ]);
  Alcotest.(check (float 1e-9)) "median odd" 3.0 (Util.median [ 5.0; 3.0; 1.0 ]);
  Alcotest.(check (float 1e-9)) "median even" 2.5 (Util.median [ 4.0; 1.0; 2.0; 3.0 ]);
  Alcotest.(check (float 1e-9)) "percent" 25.0 (Util.percent 1 4);
  Alcotest.(check (float 1e-9)) "percent of zero" 0.0 (Util.percent 1 0)

let test_table_render () =
  let t = Table.create ~aligns:[ Table.Left; Table.Right ] [ "name"; "n" ] in
  Table.add_row t [ "a"; "1" ];
  Table.add_row t [ "bcd"; "22" ];
  let s = Table.render t in
  Alcotest.(check bool) "contains header" true
    (String.length s > 0 && String.sub s 0 4 = "name");
  let lines = String.split_on_char '\n' s in
  Alcotest.(check int) "4 lines + trailing" 5 (List.length lines);
  (* right alignment pads numbers: the "1" ends its line *)
  Alcotest.(check bool) "right-aligned cell" true
    (List.exists
       (fun l -> String.length l >= 2 && String.sub l (String.length l - 2) 2 = " 1")
       lines)

let test_table_arity () =
  let t = Table.create [ "a"; "b" ] in
  Alcotest.check_raises "wrong arity" (Invalid_argument "Table.add_row: wrong arity")
    (fun () -> Table.add_row t [ "only-one" ])

let () =
  Alcotest.run "support"
    [
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "copy" `Quick test_rng_copy;
          Alcotest.test_case "seed sensitivity" `Quick test_rng_seed_sensitivity;
          Alcotest.test_case "shuffle permutation" `Quick test_rng_shuffle_permutation;
          QCheck_alcotest.to_alcotest prop_rng_int_range;
          QCheck_alcotest.to_alcotest prop_rng_int_range_incl;
        ] );
      ( "util",
        [
          Alcotest.test_case "pow2 helpers" `Quick test_pow2;
          Alcotest.test_case "align_up" `Quick test_align_up;
          Alcotest.test_case "geomean/median/percent" `Quick test_geomean_median;
          QCheck_alcotest.to_alcotest prop_round_up_pow2;
        ] );
      ( "table",
        [
          Alcotest.test_case "render" `Quick test_table_render;
          Alcotest.test_case "arity check" `Quick test_table_arity;
        ] );
    ]
