examples/quickstart.mli:
