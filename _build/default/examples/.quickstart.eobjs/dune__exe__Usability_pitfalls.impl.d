examples/usability_pitfalls.ml: List Mi_bench_kit Mi_core Printf
