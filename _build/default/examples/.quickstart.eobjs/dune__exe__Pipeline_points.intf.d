examples/pipeline_points.mli:
