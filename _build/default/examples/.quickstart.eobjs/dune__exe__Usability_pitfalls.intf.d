examples/usability_pitfalls.mli:
