examples/overflow_detection.mli:
