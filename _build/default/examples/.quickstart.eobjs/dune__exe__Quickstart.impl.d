examples/quickstart.ml: List Mi_core Mi_minic Mi_mir Mi_passes Mi_softbound Mi_vm Printf
