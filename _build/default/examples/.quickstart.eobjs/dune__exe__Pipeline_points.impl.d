examples/pipeline_points.ml: List Mi_bench_kit Mi_core Mi_passes Mi_support Printf
