examples/overflow_detection.ml: List Mi_bench_kit Mi_core Mi_vm Printf
